package vet

import (
	"fmt"
	"go/ast"
	"go/types"
)

// The arena-escape pass enforces the relation.Batch ownership contract: a
// batch's rows are a view into the producing stage's arena, valid only
// until that stage's next Next call. Rows borrowed from a batch must
// therefore never be stored into struct fields (they would dangle across
// refills) or returned bare past the pipeline (only a relation.Batch
// return hands aliased rows downstream under the contract; anything else
// needs a copy). Borrow tracking is type-aware: a variable bound to
// `b.Rows` (b of type relation.Batch), an element of it, or a range
// variable over it is borrowed; so is the direct expression.

func checkArenaEscape(p *pass) {
	p.eachFuncDecl(func(pkg *Package, file *File, decl *ast.FuncDecl) {
		p.arenaScope(pkg, decl)
	})
}

// batchRowsExpr reports whether e is `<batch>.Rows` for a relation.Batch
// (value or pointer) receiver.
func (p *pass) batchRowsExpr(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Rows" {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	return p.isModuleType(tv.Type, "internal/relation", "Batch")
}

func (p *pass) arenaScope(pkg *Package, decl *ast.FuncDecl) {
	info := pkg.Info

	// Collect borrowed bindings (flow-insensitive; rebinding a borrowed
	// name to fresh storage later in the function is rare enough that a
	// justified suppression is the right escape hatch).
	borrowed := map[types.Object]bool{}
	isBorrowedExpr := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if p.batchRowsExpr(info, e) {
			return true
		}
		if idx, ok := e.(*ast.IndexExpr); ok && p.batchRowsExpr(info, idx.X) {
			return true
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && borrowed[obj] {
				return true
			}
		}
		if idx, ok := e.(*ast.IndexExpr); ok {
			if id, ok := ast.Unparen(idx.X).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && borrowed[obj] {
					return true
				}
			}
		}
		return false
	}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if !isBorrowedExpr(rhs) {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			borrowed[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			borrowed[obj] = true
		}
	}
	// Two binding sweeps so chains (`rows := b.Rows; row := rows[0]`)
	// resolve regardless of collection order within one pass.
	for range 2 {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Rhs {
						bind(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.RangeStmt:
				if val := n.Value; val != nil && isBorrowedExpr(n.X) {
					bind(val, n.X)
				}
				if val := n.Value; val != nil {
					if p.batchRowsExpr(info, n.X) {
						bind(val, n.X)
					}
				}
			}
			return true
		})
	}

	// Violation 1: borrowed rows stored into a struct field.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			// Selecting through a field means storing beyond this frame.
			if _, isSelection := info.Selections[sel]; !isSelection {
				continue
			}
			rhs := as.Rhs[i]
			if isBorrowedExpr(rhs) {
				p.reportf(as.Pos(), fmt.Sprintf(
					"rows borrowed from a relation.Batch stored into field %s: batch rows are only valid until the stage's next Next call — copy them or keep them local", types.ExprString(sel)))
				continue
			}
			// append(field, borrowedRow...) is the same store.
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if fid, ok := call.Fun.(*ast.Ident); ok && fid.Name == "append" {
					for _, a := range call.Args[1:] {
						if isBorrowedExpr(a) {
							p.reportf(as.Pos(), fmt.Sprintf(
								"rows borrowed from a relation.Batch appended into field %s: batch rows are only valid until the stage's next Next call — copy them first", types.ExprString(sel)))
							break
						}
					}
				}
			}
		}
		return true
	})

	// Violation 2: borrowed rows returned bare. Returning a
	// relation.Batch is the sanctioned aliased hand-off; anything else
	// leaks arena storage past the pipeline.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if !isBorrowedExpr(res) {
				continue
			}
			tv, ok := info.Types[res]
			if ok && p.isModuleType(tv.Type, "internal/relation", "Batch") {
				continue
			}
			p.reportf(ret.Pos(), fmt.Sprintf(
				"%s returns rows borrowed from a relation.Batch outside a Batch: the arena behind them is recycled on the next Next call — copy before returning", decl.Name.Name))
		}
		return true
	})
}
