package vet

import (
	"flag"
	"fmt"
	"io"
	"strings"
)

// Exit codes: CI must be able to tell a broken tree from a dirty one.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // the tree parses and type-checks but violates invariants
	ExitBroken   = 2 // parse or type-check failure (or bad usage)
)

// CLIMain is the shared entry point of cmd/mkvet and its transitional
// alias cmd/mklint. It parses tool flags and go-style ./... patterns,
// runs the analysis, prints findings (human-readable or -json), and
// returns the process exit code.
func CLIMain(tool string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON report")
	rulesFlag := fs.String("rules", "", "comma-separated rule subset to run (default: all)")
	listRules := fs.Bool("list", false, "list registered rules and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: %s [-json] [-rules r1,r2] [pattern ...]\n\n", tool)
		fmt.Fprintf(stderr, "Patterns are go-style package paths relative to the module root;\n")
		fmt.Fprintf(stderr, "`./...` (the default) analyzes the whole module. Analysis is always\n")
		fmt.Fprintf(stderr, "module-wide; patterns scope which findings are reported.\n\n")
		fmt.Fprintf(stderr, "Exit status: %d clean, %d findings, %d parse/type-check failure.\n",
			ExitClean, ExitFindings, ExitBroken)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitBroken
	}
	if *listRules {
		for _, name := range RuleNames() {
			fmt.Fprintf(stdout, "%-28s %s\n", name, RuleDoc(name))
		}
		return ExitClean
	}

	opts := Options{Dir: "."}
	if *rulesFlag != "" {
		for _, r := range strings.Split(*rulesFlag, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			if RuleDoc(r) == "" {
				fmt.Fprintf(stderr, "%s: unknown rule %q (see %s -list)\n", tool, r, tool)
				return ExitBroken
			}
			opts.Rules = append(opts.Rules, r)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, pat := range patterns {
		scope, ok := patternScope(pat)
		if !ok {
			fmt.Fprintf(stderr, "%s: unsupported pattern %q (want ./dir or ./dir/...)\n", tool, pat)
			return ExitBroken
		}
		if scope == "" {
			// whole module: no scoping at all
			opts.Scope = nil
			break
		}
		opts.Scope = append(opts.Scope, scope)
	}

	rep, err := Run(opts)
	if err != nil {
		if le, ok := err.(*LoadError); ok {
			for _, msg := range le.Errs {
				fmt.Fprintln(stderr, msg)
			}
			fmt.Fprintf(stderr, "%s: module does not type-check (%d error(s))\n", tool, len(le.Errs))
			return ExitBroken
		}
		fmt.Fprintf(stderr, "%s: %v\n", tool, err)
		return ExitBroken
	}
	if *jsonOut {
		if err := WriteJSON(stdout, rep.Module.Path, rep.Diags); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", tool, err)
			return ExitBroken
		}
	} else {
		for _, d := range rep.Diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(rep.Diags) > 0 {
		fmt.Fprintf(stderr, "%s: %d finding(s)\n", tool, len(rep.Diags))
		return ExitFindings
	}
	return ExitClean
}

// patternScope maps a CLI pattern to a module-relative directory prefix.
// "" with ok=true means the whole module.
func patternScope(pat string) (string, bool) {
	p := strings.TrimSuffix(pat, "/...")
	p = strings.TrimPrefix(p, "./")
	p = strings.Trim(p, "/")
	if p == "." {
		p = ""
	}
	if strings.HasPrefix(p, "..") || strings.Contains(p, "...") {
		return "", false
	}
	return p, true
}
