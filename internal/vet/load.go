package vet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// File is one parsed source file of the module under analysis.
type File struct {
	// Path is the filesystem path the file was read from.
	Path string
	// Rel is the module-relative slash-separated path ("internal/exec/kernels.go").
	Rel string
	Ast *ast.File
}

// Package is one type-checked package of the module.
type Package struct {
	// ImportPath is the full import path ("musketeer/internal/exec").
	ImportPath string
	// Rel is the module-relative directory ("internal/exec"; "" for the
	// module root package).
	Rel   string
	Dir   string
	Files []*File
	Types *types.Package
	Info  *types.Info
	// Main marks package-main commands (cmd/*); several rules relax at
	// the binary entry-point boundary.
	Main bool
}

// Module is the fully loaded and type-checked analysis target.
type Module struct {
	// Path is the module path from go.mod ("musketeer").
	Path string
	// Root is the absolute filesystem path of the module root.
	Root string
	Fset *token.FileSet
	// Pkgs is in dependency (topological) order: a package appears after
	// everything it imports.
	Pkgs   []*Package
	byPath map[string]*Package
}

// Lookup returns the module package with the given import path, or nil.
func (m *Module) Lookup(importPath string) *Package { return m.byPath[importPath] }

// A LoadError aggregates parse and type-check failures. Callers distinguish
// it from analysis findings: a tree that does not parse or type-check is
// broken, not dirty (mkvet exits 2, not 1).
type LoadError struct {
	Errs []string
}

func (e *LoadError) Error() string {
	if len(e.Errs) == 1 {
		return e.Errs[0]
	}
	return fmt.Sprintf("%s (and %d more errors)", e.Errs[0], len(e.Errs)-1)
}

// skipDir reports whether a directory is outside the analysis universe:
// testdata trees, hidden and underscore directories, and the examples
// directory (workflow scripts, not module code).
func skipDir(name string) bool {
	return name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadModule parses and type-checks every non-test package of the module
// rooted at the nearest go.mod above dir. The standard library is resolved
// through the toolchain's export data (falling back to type-checking the
// library from source), so loading needs nothing beyond the Go toolchain
// itself — the module stays dependency-free.
func LoadModule(dir string) (*Module, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	// Collect the non-test Go files of every package directory.
	byDir := map[string][]string{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		byDir[filepath.Dir(path)] = append(byDir[filepath.Dir(path)], path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Parse in sorted directory order: fileset offsets (and with them every
	// position-sorted traversal, like the determinism pass's root order)
	// must not depend on map iteration.
	dirs := sortedKeys(byDir)

	m := &Module{Path: modPath, Root: root, Fset: token.NewFileSet(), byPath: map[string]*Package{}}
	var loadErrs []string
	var pkgs []*Package
	for _, dir := range dirs {
		files := byDir[dir]
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		imp := modPath
		if rel != "" {
			imp = modPath + "/" + rel
		}
		p := &Package{ImportPath: imp, Rel: rel, Dir: dir}
		sort.Strings(files)
		for _, path := range files {
			f, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments)
			if err != nil {
				loadErrs = append(loadErrs, err.Error())
				continue
			}
			frel := rel + "/" + filepath.Base(path)
			if rel == "" {
				frel = filepath.Base(path)
			}
			p.Files = append(p.Files, &File{Path: path, Rel: frel, Ast: f})
		}
		if len(p.Files) == 0 {
			continue
		}
		p.Main = p.Files[0].Ast.Name.Name == "main"
		pkgs = append(pkgs, p)
		m.byPath[p.ImportPath] = p
	}
	if len(loadErrs) > 0 {
		return nil, &LoadError{Errs: loadErrs}
	}

	ordered, err := topoSort(m, pkgs)
	if err != nil {
		return nil, err
	}

	imp := newChainedImporter(m)
	for _, p := range ordered {
		p.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				loadErrs = append(loadErrs, err.Error())
			},
		}
		asts := make([]*ast.File, len(p.Files))
		for i, f := range p.Files {
			asts[i] = f.Ast
		}
		tp, _ := conf.Check(p.ImportPath, m.Fset, asts, p.Info)
		p.Types = tp
	}
	if len(loadErrs) > 0 {
		return nil, &LoadError{Errs: loadErrs}
	}
	m.Pkgs = ordered
	return m, nil
}

// topoSort orders packages so every package follows its intra-module
// imports; type-checking in this order means an imported package's
// *types.Package is always complete before its importers are checked.
func topoSort(m *Module, pkgs []*Package) ([]*Package, error) {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := map[*Package]int{}
	var out []*Package
	var visit func(p *Package, from string) error
	visit = func(p *Package, from string) error {
		switch state[p] {
		case grey:
			return fmt.Errorf("import cycle through %s (imported from %s)", p.ImportPath, from)
		case black:
			return nil
		}
		state[p] = grey
		deps := map[string]bool{}
		for _, f := range p.Files {
			for _, spec := range f.Ast.Imports {
				path, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if dep := m.byPath[path]; dep != nil && !deps[path] {
					deps[path] = true
					if err := visit(dep, p.ImportPath); err != nil {
						return err
					}
				}
			}
		}
		state[p] = black
		out = append(out, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p, "module root"); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// chainedImporter resolves module-internal imports from the already
// type-checked packages and the standard library through the toolchain.
// Export data (the "gc" importer) is tried first; toolchains without
// pre-built std export data fall back to type-checking the library from
// source, so the analyzer never needs anything installed.
type chainedImporter struct {
	m       *Module
	gc      types.Importer
	src     types.Importer
	stdMemo map[string]*types.Package
}

func newChainedImporter(m *Module) *chainedImporter {
	return &chainedImporter{
		m:       m,
		gc:      importer.ForCompiler(m.Fset, "gc", nil),
		src:     importer.ForCompiler(m.Fset, "source", nil),
		stdMemo: map[string]*types.Package{},
	}
}

func (c *chainedImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := c.m.byPath[path]; p != nil {
		if p.Types == nil {
			return nil, fmt.Errorf("module package %s imported before it was checked", path)
		}
		return p.Types, nil
	}
	if tp := c.stdMemo[path]; tp != nil {
		return tp, nil
	}
	tp, err := c.gc.Import(path)
	if err != nil {
		tp, err = c.src.Import(path)
		if err != nil {
			return nil, err
		}
	}
	c.stdMemo[path] = tp
	return tp, nil
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		abs = parent
	}
}

// modulePath reads the module declaration of a go.mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(strings.Trim(rest, "\"")), nil
		}
	}
	return "", fmt.Errorf("%s: no module declaration", gomod)
}
