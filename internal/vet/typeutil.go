package vet

import (
	"go/ast"
	"go/types"
)

// Type predicates are resolved against go/types objects, never against
// source text: an aliased import, a dot import, or a named type wrapping
// the target all match.

// derefNamed unwraps pointers and aliases down to a *types.Named.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isModuleType reports whether t (after deref) is the named type
// <module>/<relPkg>.<name>.
func (p *pass) isModuleType(t types.Type, relPkg, name string) bool {
	n := derefNamed(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == p.m.Path+"/"+relPkg && n.Obj().Name() == name
}

// isStdType reports whether t (after deref) is the named type
// <pkgPath>.<name> from the standard library.
func isStdType(t types.Type, pkgPath, name string) bool {
	n := derefNamed(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// funcFrom reports whether fn is <pkgPath>.<name> (methods use the
// receiver's package).
func funcFrom(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// pkgPathOf returns the declaring package path of fn ("" for builtins).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// eachFuncDecl visits every function declaration with a body in every
// module package, excluding none — rules do their own scoping.
func (p *pass) eachFuncDecl(fn func(pkg *Package, file *File, decl *ast.FuncDecl)) {
	for _, pkg := range p.m.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Ast.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					fn(pkg, f, fd)
				}
			}
		}
	}
}

// eachFuncBody visits every function body in the module: declarations and
// each nested function literal, each exactly once, so per-scope analyses
// (span-leak, lock-discipline) treat a closure as its own scope.
func (p *pass) eachFuncBody(fn func(pkg *Package, file *File, name string, body *ast.BlockStmt)) {
	p.eachFuncDecl(func(pkg *Package, file *File, decl *ast.FuncDecl) {
		fn(pkg, file, decl.Name.Name, decl.Body)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fn(pkg, file, decl.Name.Name+" (func literal)", lit.Body)
			}
			return true
		})
	})
}

// hasCtxParam reports whether the function type carries a context: either
// a parameter of type context.Context, or a parameter whose (possibly
// pointer) struct type has a context.Context field — engines.RunContext
// carries its Ctx inside the run context struct.
func hasCtxParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		pt := sig.Params().At(i).Type()
		if isStdType(pt, "context", "Context") {
			return true
		}
		n := derefNamed(pt)
		if n == nil {
			continue
		}
		if st, ok := n.Underlying().(*types.Struct); ok {
			for j := 0; j < st.NumFields(); j++ {
				if isStdType(st.Field(j).Type(), "context", "Context") {
					return true
				}
			}
		}
	}
	return false
}
