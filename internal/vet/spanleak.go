package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The span-leak pass proves, per function scope and per control-flow path,
// that every flight-recorder span started locally is ended before the
// function returns — including early error returns the old syntactic
// span-hygiene rule could not see (it only checked that *some* .End()
// existed somewhere in the function). A span that escapes the scope
// (returned, stored, or handed to another call) transfers ownership and is
// exempt, matching the obs API contract.
//
// Mechanically: a forward may-analysis over the function's CFG. A span
// start gens a live fact; .End() (direct or deferred, including inside a
// deferred closure) and every escape kill it; any fact still live at a
// return edge is a leak, reported with both the start and the leaking
// return position.

// spanStartCall reports whether e starts a span: a StartSpan or Begin call
// whose static result type is *obs.Span (resolved through go/types, so
// wrappers with other names don't false-positive and renamed imports don't
// hide).
func (p *pass) spanStartCall(info *types.Info, e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	switch sel.Sel.Name {
	case "StartSpan", "Begin":
	default:
		return nil, false
	}
	tv, ok := info.Types[call]
	if !ok {
		return nil, false
	}
	return call, p.isModuleType(tv.Type, "internal/obs", "Span")
}

func checkSpanLeak(p *pass) {
	p.eachFuncBody(func(pkg *Package, file *File, name string, body *ast.BlockStmt) {
		p.spanLeakScope(pkg, file, name, body)
	})
}

type spanFact struct {
	name  string
	start token.Pos
}

func (p *pass) spanLeakScope(pkg *Package, file *File, fname string, body *ast.BlockStmt) {
	info := pkg.Info

	// Discarded starts are leaks before any flow analysis: the span value
	// is gone, nothing can ever end it.
	walkScopeNodes(body, func(n ast.Node) {
		if stmt, ok := n.(*ast.ExprStmt); ok {
			if _, ok := p.spanStartCall(info, stmt.X); ok {
				p.reportf(stmt.Pos(), fmt.Sprintf("span started and immediately discarded in %s: assign it and defer .End(), or don't start it", fname))
			}
		}
	})

	facts := map[string]spanFact{}
	objKey := func(obj types.Object) string {
		return fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
	}
	lhsObj := func(id *ast.Ident) types.Object {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	// killLive removes every tracked span identifier appearing under n
	// (including inside nested closures — a captured span's ownership is
	// the closure's problem, not this path's).
	killLive := func(n ast.Node, live map[string]token.Pos) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if id, ok := c.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					delete(live, objKey(obj))
				}
			}
			return true
		})
	}
	// scanExpr finds End() kills and escape kills inside one expression
	// tree (excluding nested function literals except where noted).
	var scanExpr func(n ast.Node, live map[string]token.Pos)
	scanExpr = func(n ast.Node, live map[string]token.Pos) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				// A closure capturing a live span takes ownership.
				killLive(c.Body, live)
				return false
			case *ast.CallExpr:
				if sel, ok := c.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok {
						if sel.Sel.Name == "End" && len(c.Args) == 0 {
							if obj := info.Uses[id]; obj != nil {
								delete(live, objKey(obj))
							}
							return false
						}
						// Other method calls on the span keep it live;
						// arguments may still escape other spans.
						for _, a := range c.Args {
							killLive(a, live)
						}
						return false
					}
				}
				for _, a := range c.Args {
					killLive(a, live)
				}
				scanExpr(c.Fun, live)
				return false
			case *ast.UnaryExpr:
				if c.Op == token.AND {
					killLive(c.X, live)
					return false
				}
			case *ast.CompositeLit:
				killLive(c, live)
				return false
			case *ast.SendStmt:
				killLive(c.Value, live)
				return false
			}
			return true
		})
	}
	handleAssignPair := func(lhs, rhs ast.Expr, live map[string]token.Pos) {
		if call, ok := p.spanStartCall(info, rhs); ok {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent || id.Name == "_" {
				p.reportf(call.Pos(), fmt.Sprintf("span started and immediately discarded in %s: assign it and defer .End(), or don't start it", fname))
				return
			}
			obj := lhsObj(id)
			if obj == nil {
				return
			}
			key := objKey(obj)
			live[key] = call.Pos()
			if _, ok := facts[key]; !ok {
				facts[key] = spanFact{name: id.Name, start: call.Pos()}
			}
			return
		}
		// Ownership moves: a tracked span assigned anywhere else (another
		// variable, a field, a map or slice slot) escapes this scope.
		if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				delete(live, objKey(obj))
			}
			return
		}
		scanExpr(rhs, live)
		_ = lhs
	}
	transfer := func(n ast.Node, live map[string]token.Pos) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Rhs {
					handleAssignPair(n.Lhs[i], n.Rhs[i], live)
				}
				return
			}
			for _, rhs := range n.Rhs {
				scanExpr(rhs, live)
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i := range vs.Values {
					handleAssignPair(vs.Names[i], vs.Values[i], live)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				killLive(res, live)
			}
		case *ast.DeferStmt:
			// defer sp.End(), defer func(){ sp.End() }(), and handing the
			// span to any deferred call all discharge it on every path
			// that executed this statement.
			killLive(n.Call, live)
		default:
			scanExpr(n, live)
		}
	}

	g := buildCFG(body)
	in := g.fixpoint(transfer)
	type leak struct {
		fact    spanFact
		exitPos token.Pos
	}
	leaks := map[string]leak{}
	g.exitLive(in, transfer, func(endPos token.Pos, live map[string]token.Pos) {
		for key := range live {
			f, ok := facts[key]
			if !ok {
				continue
			}
			if prev, ok := leaks[key]; !ok || endPos < prev.exitPos {
				leaks[key] = leak{fact: f, exitPos: endPos}
			}
		}
	})
	keys := make([]string, 0, len(leaks))
	for k := range leaks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		l := leaks[k]
		exitLine := p.m.Fset.Position(l.exitPos).Line
		p.reportAt(l.fact.start, fmt.Sprintf(
			"span %s started in %s is not ended on the path leaving at line %d: add `defer %s.End()` or end it before that return",
			l.fact.name, fname, exitLine, l.fact.name), nil)
	}
}

// walkScopeNodes visits body's nodes excluding nested function literals.
func walkScopeNodes(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
