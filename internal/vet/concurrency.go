package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The scheduler-only-concurrency pass enforces PR 3's ownership rule
// type-aware: goroutines and WaitGroups belong to internal/sched, whose
// Scheduler/ForEach give admission control, fail-fast cancellation, and
// deterministic makespan accounting. Everywhere else a `go` statement or
// any use of a sync.WaitGroup — however the import is spelled, and even
// through a field of WaitGroup type — is a finding, with one structural
// exception: the data-parallel kernel packages (internal/exec,
// internal/relation) may run *contained fork-join* helpers, where every
// goroutine spawned by a function is provably joined inside that same
// function (a WaitGroup.Wait or a channel receive follows the spawn in
// the same body). Anything that lets a goroutine outlive its function is
// execution-stack concurrency and must go through the scheduler.

// forkJoinPkgs are the packages whose contained fork-join is sanctioned.
var forkJoinPkgs = []string{"internal/exec", "internal/relation"}

func checkConcurrency(p *pass) {
	p.eachFuncDecl(func(pkg *Package, file *File, decl *ast.FuncDecl) {
		if pkg.Rel == "internal/sched" {
			return
		}
		contained := underAny(pkg.Rel, forkJoinPkgs) && joinsInBody(pkg.Info, decl.Body)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if contained {
					return true
				}
				p.reportf(n.Pos(), fmt.Sprintf(
					"go statement outside internal/sched in %s: execution-stack concurrency must go through sched.Scheduler/ForEach (contained fork-join is only sanctioned inside the kernel packages)",
					decl.Name.Name))
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Add", "Done", "Wait":
				default:
					return true
				}
				tv, ok := pkg.Info.Types[sel.X]
				if !ok || !isStdType(tv.Type, "sync", "WaitGroup") {
					return true
				}
				if contained {
					return true
				}
				p.reportf(n.Pos(), fmt.Sprintf(
					"sync.WaitGroup.%s outside internal/sched in %s: use sched.ForEach (or Scheduler.Run) instead of hand-rolled joins",
					sel.Sel.Name, decl.Name.Name))
			}
			return true
		})
	})
}

// joinsInBody reports whether body both spawns and joins: every sanctioned
// fork-join kernel helper waits for its goroutines before returning, via
// WaitGroup.Wait or a channel receive.
func joinsInBody(info *types.Info, body *ast.BlockStmt) bool {
	spawns, joins := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			spawns = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				joins = true
			}
		case *ast.RangeStmt:
			// ranging over a channel is also a join
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					joins = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if tv, ok := info.Types[sel.X]; ok && isStdType(tv.Type, "sync", "WaitGroup") {
					joins = true
				}
			}
		}
		return true
	})
	return spawns && joins
}
