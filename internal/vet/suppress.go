package vet

import (
	"go/token"
	"strings"
)

// A suppression is one `//mkvet:ignore <rule>[,<rule>...] <reason>` comment.
// It silences matching findings reported on its own line or on the line
// directly below (for comments placed above the offending statement). The
// reason is mandatory: an unjustified suppression is itself a finding, and
// so is a suppression that no longer suppresses anything — stale ignores
// rot into false documentation, so mkvet garbage-collects them.
type suppression struct {
	pos    token.Position
	rules  map[string]bool
	reason string
	used   bool
}

const suppressMarker = "mkvet:ignore"

// collectSuppressions scans every file's comments for mkvet:ignore markers.
// Malformed markers (no rule list, or no reason) are reported immediately
// under the suppression rule.
func collectSuppressions(m *Module, report func(d Diagnostic)) []*suppression {
	var out []*suppression
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Ast.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//"+suppressMarker)
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) < 2 {
						report(Diagnostic{
							Rule:     "suppression",
							Severity: SevWarn,
							File:     f.Rel,
							Line:     pos.Line,
							Col:      pos.Column,
							Message:  "malformed mkvet:ignore: want `//mkvet:ignore <rule>[,<rule>] <reason>` (a reason is mandatory)",
						})
						continue
					}
					s := &suppression{pos: pos, rules: map[string]bool{}, reason: strings.Join(fields[1:], " ")}
					for _, r := range strings.Split(fields[0], ",") {
						s.rules[r] = true
					}
					out = append(out, s)
				}
			}
		}
	}
	return out
}

// applySuppressions filters suppressed findings out of ds, marking each
// suppression that fired, then (on full-rule runs only — a filtered run
// cannot tell used from unused) reports the ones that never fired. The
// suppression-hygiene findings themselves cannot be suppressed.
func applySuppressions(ds []Diagnostic, sups []*suppression, relOf func(file string) string, reportUnused bool) []Diagnostic {
	var kept []Diagnostic
	for _, d := range ds {
		suppressed := false
		for _, s := range sups {
			if !s.rules[d.Rule] {
				continue
			}
			if relOf(s.pos.Filename) != d.File {
				continue
			}
			if s.pos.Line == d.Line || s.pos.Line == d.Line-1 {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	if !reportUnused {
		return kept
	}
	for _, s := range sups {
		if s.used {
			continue
		}
		var rules []string
		for r := range s.rules {
			rules = append(rules, r)
		}
		kept = append(kept, Diagnostic{
			Rule:     "suppression",
			Severity: SevWarn,
			File:     relOf(s.pos.Filename),
			Line:     s.pos.Line,
			Col:      s.pos.Column,
			Message:  "unused mkvet:ignore for " + strings.Join(sortedRules(rules), ",") + ": nothing is suppressed here any more — delete the comment",
		})
	}
	return kept
}

func sortedRules(rules []string) []string {
	for i := 1; i < len(rules); i++ {
		for j := i; j > 0 && rules[j] < rules[j-1]; j-- {
			rules[j], rules[j-1] = rules[j-1], rules[j]
		}
	}
	return rules
}
