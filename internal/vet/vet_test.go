package vet

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The seeded-violation corpus is a self-contained mini-module sharing the
// real module path, so every type-identity match (obs.Span, relation.Batch,
// engines.Engine) exercises the same code path as a run on the real tree.
// Each rule has at least one violation file and one _clean.go file; the
// golden files pin the exact diagnostics, witness chains included.
var update = flag.Bool("update", false, "rewrite the golden files under testdata/vet/golden")

const (
	corpusDir = "../../testdata/vet/src"
	brokenDir = "../../testdata/vet/broken"
	cleanDir  = "../../testdata/vet/clean"
	goldenDir = "../../testdata/vet/golden"
)

// corpusState caches the full-rule corpus run: loading re-type-checks the
// standard library, so every test sharing the default options shares it.
var corpusState struct {
	once sync.Once
	rep  *Report
	err  error
}

func corpusReport(t *testing.T) *Report {
	t.Helper()
	corpusState.once.Do(func() {
		corpusState.rep, corpusState.err = Run(Options{Dir: corpusDir})
	})
	if corpusState.err != nil {
		t.Fatalf("Run(%s): %v", corpusDir, corpusState.err)
	}
	return corpusState.rep
}

func TestGoldenDiagnostics(t *testing.T) {
	rep := corpusReport(t)
	byRule := map[string][]string{}
	for _, d := range rep.Diags {
		byRule[d.Rule] = append(byRule[d.Rule], d.String())
	}

	rules := append(RuleNames(), "suppression")
	covered := 0
	for _, rule := range rules {
		t.Run(rule, func(t *testing.T) {
			got := ""
			if lines := byRule[rule]; len(lines) > 0 {
				got = strings.Join(lines, "\n") + "\n"
			}
			golden := filepath.Join(goldenDir, rule+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (regenerate with `go test ./internal/vet -run TestGoldenDiagnostics -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics diverge from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
			if got == "" {
				t.Errorf("corpus seeds no %s violation: every rule needs at least one", rule)
			}
			covered += len(byRule[rule])
		})
	}
	if !*update && covered != len(rep.Diags) {
		t.Errorf("corpus produced diagnostics outside the registered rules: %d of %d covered", covered, len(rep.Diags))
	}
}

// Every _clean.go file seeds the near-miss shape of its rule (aliased
// receivers, contained fork-join, deferred releases): a finding in one is
// a false positive.
func TestCleanFilesStayClean(t *testing.T) {
	rep := corpusReport(t)
	for _, d := range rep.Diags {
		if strings.Contains(path.Base(d.File), "_clean") {
			t.Errorf("false positive in clean corpus file: %s", d)
		}
	}
}

// Acceptance seed 1: the span in span_branch.go IS ended on the happy path
// — the old syntactic rule (require some .End() in the function) passes
// it; only the CFG walk sees the leaking early return.
func TestBranchDependentSpanLeak(t *testing.T) {
	rep := corpusReport(t)
	src, err := os.ReadFile(filepath.Join(corpusDir, "internal/core/span_branch.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(src, []byte("sp.End()")) {
		t.Fatal("corpus drifted: span_branch.go must end its span on the happy path")
	}
	for _, d := range rep.Diags {
		if d.Rule == "span-leak" && d.File == "internal/core/span_branch.go" &&
			strings.Contains(d.Message, "is not ended on the path leaving at line") {
			return
		}
	}
	t.Fatal("no span-leak finding for the branch-dependent leak in span_branch.go")
}

// Acceptance seed 2: the clock behind FusedStamp is two calls away in a
// package the old linter's import scan never visited; the finding must
// carry the full witness chain.
func TestTransitiveDeterminismChain(t *testing.T) {
	rep := corpusReport(t)
	for _, d := range rep.Diags {
		if d.Rule != "determinism" || len(d.Chain) < 3 {
			continue
		}
		if d.Chain[0].Func == "musketeer/internal/exec.FusedStamp" && strings.Contains(d.Message, "(2 hops)") {
			return
		}
	}
	t.Fatal("no determinism finding with a >=2-hop witness chain rooted at FusedStamp")
}

func TestSuppressions(t *testing.T) {
	rep := corpusReport(t)
	var unused, malformed bool
	for _, d := range rep.Diags {
		if d.File == "internal/exec/suppressed.go" && d.Rule == "hot-path-keys" {
			t.Errorf("justified suppression did not fire: %s", d)
		}
		if d.Rule == "suppression" {
			if strings.Contains(d.Message, "unused mkvet:ignore for span-leak") {
				unused = true
			}
			if strings.Contains(d.Message, "malformed mkvet:ignore") {
				malformed = true
			}
			if d.Severity != SevWarn {
				t.Errorf("suppression-hygiene findings are warnings, got %s: %s", d.Severity, d)
			}
		}
	}
	if !unused {
		t.Error("stale mkvet:ignore was not reported as unused")
	}
	if !malformed {
		t.Error("reason-less mkvet:ignore was not reported as malformed")
	}
}

// A -rules run cannot tell a used suppression from an unused one, so it
// must not report staleness (malformed markers are always reported).
func TestRuleFilter(t *testing.T) {
	rep, err := Run(Options{Dir: corpusDir, Rules: []string{"lock-discipline"}})
	if err != nil {
		t.Fatal(err)
	}
	locks := 0
	for _, d := range rep.Diags {
		switch d.Rule {
		case "lock-discipline":
			locks++
		case "suppression":
			if strings.Contains(d.Message, "unused") {
				t.Errorf("filtered run reported an unused suppression: %s", d)
			}
		default:
			t.Errorf("filtered run leaked rule %s: %s", d.Rule, d)
		}
	}
	if locks != 2 {
		t.Errorf("lock-discipline found %d violations in the corpus, want 2", locks)
	}
}

// Scoping restricts reporting, not analysis: a ./internal/core/... run
// still type-checks and traverses the whole module.
func TestScopedRun(t *testing.T) {
	rep, err := Run(Options{Dir: corpusDir, Scope: []string{"internal/core"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diags) == 0 {
		t.Fatal("scoped run reported nothing for internal/core")
	}
	for _, d := range rep.Diags {
		if !strings.HasPrefix(d.File, "internal/core/") {
			t.Errorf("scoped run leaked a finding outside internal/core: %s", d)
		}
	}
}

func TestBrokenTree(t *testing.T) {
	_, err := Run(Options{Dir: brokenDir})
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("broken module: want *LoadError, got %v", err)
	}
	if len(le.Errs) == 0 {
		t.Fatal("LoadError carries no messages")
	}
}

// inDir runs fn with the working directory switched to dir (CLIMain
// resolves the module from ".").
func inDir(t *testing.T, dir string, fn func()) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	}()
	fn()
}

func TestCLIExitCodes(t *testing.T) {
	cases := []struct {
		name string
		dir  string
		args []string
		want int
	}{
		{"findings", corpusDir, nil, ExitFindings},
		{"broken", brokenDir, nil, ExitBroken},
		{"clean", cleanDir, nil, ExitClean},
		{"unknown-rule", cleanDir, []string{"-rules", "no-such-rule"}, ExitBroken},
		{"bad-pattern", cleanDir, []string{"internal/.../deep"}, ExitBroken},
		{"list", cleanDir, []string{"-list"}, ExitClean},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			code := -1
			inDir(t, tc.dir, func() { code = CLIMain("mkvet", tc.args, &out, &errBuf) })
			if code != tc.want {
				t.Fatalf("exit code %d, want %d\nstdout:\n%s\nstderr:\n%s", code, tc.want, out.String(), errBuf.String())
			}
		})
	}
}

func TestCLIJSONReport(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := -1
	inDir(t, corpusDir, func() { code = CLIMain("mkvet", []string{"-json"}, &out, &errBuf) })
	if code != ExitFindings {
		t.Fatalf("exit code %d, want %d (stderr: %s)", code, ExitFindings, errBuf.String())
	}
	var rep struct {
		Module      string         `json:"module"`
		Findings    int            `json:"findings"`
		ByRule      map[string]int `json:"by_rule"`
		Diagnostics []Diagnostic   `json:"diagnostics"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if rep.Module != "musketeer" {
		t.Errorf("module %q, want musketeer", rep.Module)
	}
	if rep.Findings != len(rep.Diagnostics) {
		t.Errorf("findings %d != %d diagnostics", rep.Findings, len(rep.Diagnostics))
	}
	sum := 0
	for _, n := range rep.ByRule {
		sum += n
	}
	if sum != rep.Findings {
		t.Errorf("by_rule sums to %d, want %d", sum, rep.Findings)
	}
}

func TestPatternScope(t *testing.T) {
	cases := []struct {
		pat   string
		scope string
		ok    bool
	}{
		{"./...", "", true},
		{".", "", true},
		{"./internal/core/...", "internal/core", true},
		{"./internal/core", "internal/core", true},
		{"internal/core/...", "internal/core", true},
		{"../elsewhere", "", false},
		{"internal/.../deep", "", false},
	}
	for _, tc := range cases {
		scope, ok := patternScope(tc.pat)
		if scope != tc.scope || ok != tc.ok {
			t.Errorf("patternScope(%q) = %q,%v want %q,%v", tc.pat, scope, ok, tc.scope, tc.ok)
		}
	}
}
