package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestLoggerEmitsStructuredEvents(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONLogger(&buf, slog.LevelDebug)
	l.WithRun("r7").WithJob("join:lineitem").WithAttempt(2).
		Warn("job_retry").
		Str("engine", "spark").
		Int("backoff_ms", 250).
		Float("predicted_s", 12.5).
		Bool("speculative", true).
		Err(errors.New("worker lost")).
		Emit()

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("event is not one JSON object: %v\n%s", err, buf.String())
	}
	want := map[string]any{
		"msg":         "job_retry",
		"level":       "WARN",
		"run":         "r7",
		"job":         "join:lineitem",
		"attempt":     float64(2),
		"engine":      "spark",
		"backoff_ms":  float64(250),
		"predicted_s": 12.5,
		"speculative": true,
		"err":         "worker lost",
	}
	for k, v := range want {
		if rec[k] != v {
			t.Errorf("event[%q] = %v, want %v", k, rec[k], v)
		}
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	// Every method on the disabled logger chain must be a safe no-op.
	l.WithRun("r").WithJob("j").WithAttempt(1).
		Info("job_complete").Str("k", "v").Int("n", 1).Float("f", 1).Bool("b", true).Err(errors.New("x")).Emit()
	l.Debug("d").Emit()
	l.Warn("w").Emit()
	l.Error("e").Emit()
	if NewLogger(nil) != nil {
		t.Fatal("NewLogger(nil) must return the disabled (nil) logger")
	}
}

func TestLoggerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONLogger(&buf, slog.LevelWarn)
	l.Debug("job_dispatch").Str("job", "x").Emit()
	l.Info("job_complete").Emit()
	if buf.Len() != 0 {
		t.Fatalf("below-level events reached the handler:\n%s", buf.String())
	}
	l.Warn("job_retry").Emit()
	if !strings.Contains(buf.String(), "job_retry") {
		t.Fatalf("at-level event suppressed:\n%s", buf.String())
	}
}

func TestLoggerErrSkipsNil(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONLogger(&buf, slog.LevelInfo)
	l.Info("workflow_complete").Err(nil).Emit()
	if strings.Contains(buf.String(), `"err"`) {
		t.Fatalf("nil error produced an err field:\n%s", buf.String())
	}
}

func TestTextLoggerLine(t *testing.T) {
	var buf bytes.Buffer
	l := NewTextLogger(&buf, slog.LevelInfo)
	l.WithRun("r1").Info("workflow_start").Str("workflow", "q1").Emit()
	line := buf.String()
	for _, frag := range []string{"msg=workflow_start", "run=r1", "workflow=q1"} {
		if !strings.Contains(line, frag) {
			t.Errorf("text line missing %q: %s", frag, line)
		}
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	safe := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	l := NewJSONLogger(safe, slog.LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			jl := l.WithRun("r").WithAttempt(g)
			for i := 0; i < 50; i++ {
				jl.Info("job_complete").Int("i", int64(i)).Emit()
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	lines := strings.Count(buf.String(), "\n")
	mu.Unlock()
	if lines != 400 {
		t.Fatalf("got %d events, want 400", lines)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
