// Package obs is Musketeer's zero-dependency observability layer: a
// per-run flight recorder of hierarchical spans, a process-wide metrics
// registry, and estimator-accuracy accounting.
//
// Everything here is built around two invariants:
//
//   - Race safety. One recorder and one registry are shared by every
//     goroutine of a concurrent workflow execution (scheduler workers,
//     engine jobs, the WHILE driver). Span creation and metric updates are
//     internally synchronized; an individual span is owned by the goroutine
//     that started it until End, which matches how the execution stack
//     hands work to exactly one worker at a time.
//
//   - Free when disabled. A nil *Recorder, nil *Span, nil *Registry, and
//     nil counters/gauges/histograms are all valid receivers whose methods
//     do nothing — and, because every attribute setter takes typed (string,
//     int64, float64) values rather than interface{}, a disabled call site
//     performs zero allocations. ci.sh gates this with a
//     testing.AllocsPerRun guard.
//
// Spans form a tree (workflow → optimize/partition-search → analyze →
// schedule → job attempt → engine phase, with per-iteration WHILE spans)
// and carry both real wall-clock timings and the simulated-clock timings of
// the cost model. Export as Chrome trace_event JSON (Perfetto-loadable)
// lives in trace.go; the metrics registry in metrics.go; predicted-vs-
// measured makespan accounting in accuracy.go.
package obs

import (
	"sync"
	"time"
)

// Recorder is a per-run flight recorder. The zero value is not usable; a
// nil *Recorder is — every method no-ops, which is how tracing is disabled
// without conditionals at the instrumentation sites.
type Recorder struct {
	mu    sync.Mutex
	epoch time.Time
	spans []*Span
	next  int64
}

// NewRecorder starts an empty flight recorder whose wall-clock epoch is
// now; span timestamps are offsets from it.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now()}
}

// AttrKind discriminates a span attribute's value field.
type AttrKind uint8

// Attribute kinds. String and integer attributes describe structure (names,
// attempt numbers, byte counts) and survive golden-trace zeroing; float
// attributes are measurements and are dropped when timings are zeroed.
const (
	AttrStr AttrKind = iota
	AttrInt
	AttrFloat
)

// Attr is one typed span attribute. Typed variants (instead of
// interface{}) keep disabled instrumentation allocation-free: nothing is
// boxed before the nil check.
type Attr struct {
	Key   string
	Kind  AttrKind
	Str   string
	Int   int64
	Float float64
}

// Span is one timed node of the flight recorder's tree. Fields are written
// only by the goroutine that started the span (spans are handed to exactly
// one worker at a time); the recorder's span list is the shared, mutex-
// guarded structure.
type Span struct {
	rec *Recorder
	// ID and Parent place the span in the recorder's tree (Parent 0 =
	// root). IDs reflect creation order, which is nondeterministic under
	// concurrency — the exporter orders the tree structurally instead.
	ID     int64
	Parent int64
	Name   string
	// Cat is the span's category ("pipeline", "job", "phase", "while").
	Cat string
	// Start and Dur are real wall-clock offsets from the recorder epoch.
	Start, Dur time.Duration
	// SimStart and SimDur place the span on the simulated timeline
	// (seconds); negative means unset.
	SimStart, SimDur float64
	// ownTrack marks spans that start a new track in the trace viewer
	// (job attempts), so concurrent jobs render on separate lanes.
	ownTrack bool
	attrs    []Attr
	ended    bool
}

// StartSpan opens a child span of parent (nil parent = a root span).
// Returns nil — and allocates nothing — on a nil recorder.
func (r *Recorder) StartSpan(parent *Span, name, cat string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{rec: r, Name: name, Cat: cat, SimStart: -1, SimDur: -1}
	r.mu.Lock()
	r.next++
	s.ID = r.next
	if parent != nil {
		s.Parent = parent.ID
	}
	s.Start = time.Since(r.epoch)
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// End closes the span at the current wall clock. Safe on nil spans and
// idempotent (retried instrumentation cannot double-close).
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Dur = time.Since(s.rec.epoch) - s.Start
}

// NewTrack marks the span as the start of a new display track, so the
// trace viewer renders it (and its children) on its own lane instead of
// overlapping concurrent siblings.
func (s *Span) NewTrack() {
	if s == nil {
		return
	}
	s.ownTrack = true
}

// SetSim places the span on the simulated timeline (seconds). May be
// called after End — simulated start/finish times are only known once the
// scheduler has accounted the whole submission.
func (s *Span) SetSim(start, dur float64) {
	if s == nil {
		return
	}
	s.SimStart, s.SimDur = start, dur
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, val string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrStr, Str: val})
}

// SetInt attaches an integer attribute (structural: attempts, iteration
// and byte counts — kept by golden-trace zeroing).
func (s *Span) SetInt(key string, val int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrInt, Int: val})
}

// SetFloat attaches a float attribute (a measurement: wall milliseconds,
// predicted/actual seconds — dropped by golden-trace zeroing).
func (s *Span) SetFloat(key string, val float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrFloat, Float: val})
}

// Attrs returns the span's attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// Spans returns a snapshot of every span recorded so far, in creation
// order. The returned slice is a copy; the spans are shared.
func (r *Recorder) Spans() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Span(nil), r.spans...)
}

// Len reports how many spans have been recorded.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}
