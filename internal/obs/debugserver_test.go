package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func debugFixture() (*Registry, *RunRegistry, string) {
	metrics := promRegistry()
	runs := NewRunRegistry(4)
	rec := NewRecorder()
	root := rec.StartSpan(nil, "workflow", "pipeline")
	rec.StartSpan(root, "job:x", "job").End()
	root.End()
	traced := runs.Record(RunDigest{Workflow: "q1", Status: "ok", MakespanS: 12}, rec)
	runs.Record(RunDigest{Workflow: "q2", Status: "failed", Err: "boom"}, nil)
	return metrics, runs, traced
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestDebugMuxEndpoints(t *testing.T) {
	metrics, runs, traced := debugFixture()
	srv := httptest.NewServer(DebugMux(metrics, runs))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK || hdr.Get("Content-Type") != PromContentType {
		t.Fatalf("/metrics: code=%d type=%q", code, hdr.Get("Content-Type"))
	}
	if err := ValidatePromText(body); err != nil {
		t.Fatalf("/metrics exposition invalid: %v", err)
	}

	if code, body, _ := get(t, srv, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz: code=%d body=%q", code, body)
	}

	code, body, hdr = get(t, srv, "/debug/runs")
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("/debug/runs: code=%d type=%q", code, hdr.Get("Content-Type"))
	}
	var list struct {
		Runs []RunDigest `json:"runs"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("/debug/runs not JSON: %v\n%s", err, body)
	}
	if len(list.Runs) != 2 || list.Runs[0].Workflow != "q2" || list.Runs[1].ID != traced {
		t.Fatalf("/debug/runs = %+v", list.Runs)
	}

	code, body, _ = get(t, srv, "/debug/runs/"+traced)
	var d RunDigest
	if code != http.StatusOK || json.Unmarshal([]byte(body), &d) != nil || d.Workflow != "q1" {
		t.Fatalf("/debug/runs/%s: code=%d body=%s", traced, code, body)
	}

	code, body, _ = get(t, srv, "/debug/runs/"+traced+"/trace")
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if code != http.StatusOK || json.Unmarshal([]byte(body), &doc) != nil || len(doc.TraceEvents) != 2 {
		t.Fatalf("trace: code=%d events=%d body=%s", code, len(doc.TraceEvents), body)
	}

	// Untraced run: digest serves, trace 404s with an explanation.
	code, body, _ = get(t, srv, "/debug/runs/r2/trace")
	if code != http.StatusNotFound || !strings.Contains(body, "not traced") {
		t.Fatalf("untraced trace: code=%d body=%q", code, body)
	}
	if code, _, _ := get(t, srv, "/debug/runs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown run served: code=%d", code)
	}
	if code, _, _ := get(t, srv, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof: code=%d", code)
	}
}

func TestDebugMuxNilBackends(t *testing.T) {
	srv := httptest.NewServer(DebugMux(nil, nil))
	defer srv.Close()
	if code, body, _ := get(t, srv, "/metrics"); code != http.StatusOK || body != "" {
		t.Fatalf("nil-registry /metrics: code=%d body=%q", code, body)
	}
	code, body, _ := get(t, srv, "/debug/runs")
	if code != http.StatusOK || !strings.Contains(body, `"runs": []`) {
		t.Fatalf("nil-runreg /debug/runs: code=%d body=%q", code, body)
	}
	if code, _, _ := get(t, srv, "/debug/runs/r1"); code != http.StatusNotFound {
		t.Fatalf("nil-runreg run lookup: code=%d", code)
	}
}
