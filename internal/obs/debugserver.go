package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// The debug server is the telemetry plane's HTTP surface — what a
// long-lived Musketeer process (and, later, the `musketeer serve` daemon)
// exposes for scraping, tailing, and poking:
//
//	/metrics                  Prometheus text exposition of the registry
//	/debug/runs               JSON digests of the last N executions
//	/debug/runs/<id>          one execution's digest
//	/debug/runs/<id>/trace    the execution's Chrome trace JSON (Perfetto)
//	/healthz                  liveness probe
//	/debug/pprof/*            the stock Go profiler endpoints
//
// DebugMux is a plain http.Handler so callers own the listener lifecycle
// (cmd/musketeer serves it on -debug-addr; tests mount it on httptest).

// DebugMux builds the debug plane's handler over a metrics registry and a
// run registry. Either may be nil: a nil metrics registry scrapes empty, a
// nil run registry serves an empty run list.
func DebugMux(metrics *Registry, runs *RunRegistry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		if err := metrics.WritePrometheus(w); err != nil {
			// Headers are gone; nothing to do but stop writing.
			return
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /debug/runs", func(w http.ResponseWriter, req *http.Request) {
		list := runs.Runs()
		if list == nil {
			list = []RunDigest{}
		}
		writeJSON(w, struct {
			Runs []RunDigest `json:"runs"`
		}{list})
	})
	mux.HandleFunc("GET /debug/runs/{id}", func(w http.ResponseWriter, req *http.Request) {
		d, _, ok := runs.Get(req.PathValue("id"))
		if !ok {
			http.NotFound(w, req)
			return
		}
		writeJSON(w, d)
	})
	mux.HandleFunc("GET /debug/runs/{id}/trace", func(w http.ResponseWriter, req *http.Request) {
		_, rec, ok := runs.Get(req.PathValue("id"))
		if !ok {
			http.NotFound(w, req)
			return
		}
		if rec == nil {
			http.Error(w, "run was not traced (deployment built without WithTracing)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		rec.WriteChromeTrace(w, TraceOptions{})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
