package obs

import "sort"

// The flight recorder's engine phase spans ("pull"/"process"/"push",
// category "phase") carry simulated durations and — for the DFS edges —
// byte counts. PhaseRates is the read path over that data: it aggregates
// the spans per (engine, phase) into observed throughputs, the span-side
// evidence the feedback calibration loop and the stats CLI consume. Pure
// data walk: durations were recorded when the spans were, no clock is
// read here.

// PhaseRate aggregates every recorded span of one engine phase.
type PhaseRate struct {
	Engine string `json:"engine"`
	Phase  string `json:"phase"`
	// Bytes is the summed "bytes" attribute (zero for phases that do not
	// record volumes); SimSeconds / WallSeconds are summed simulated and
	// wall durations.
	Bytes       int64   `json:"bytes"`
	SimSeconds  float64 `json:"sim_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	Samples     int     `json:"samples"`
	// MBps is the derived effective throughput on the simulated clock
	// (zero when the phase carries no byte counts).
	MBps float64 `json:"mbps,omitempty"`
}

// PhaseRates aggregates the recorder's engine phase spans per (engine,
// phase), attributing each phase to the engine named on its enclosing job
// span. Results are sorted by engine then phase. Nil-safe.
func PhaseRates(r *Recorder) []PhaseRate {
	spans := r.Spans()
	if len(spans) == 0 {
		return nil
	}
	byID := make(map[int64]*Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	engineOf := func(s *Span) string {
		for p := byID[s.Parent]; p != nil; p = byID[p.Parent] {
			if p.Cat != "job" {
				continue
			}
			for _, a := range p.Attrs() {
				if a.Key == "engine" && a.Kind == AttrStr {
					return a.Str
				}
			}
			return ""
		}
		return ""
	}
	acc := map[string]*PhaseRate{}
	for _, s := range spans {
		if s.Cat != "phase" {
			continue
		}
		eng := engineOf(s)
		if eng == "" {
			continue
		}
		key := eng + "|" + s.Name
		pr, ok := acc[key]
		if !ok {
			pr = &PhaseRate{Engine: eng, Phase: s.Name}
			acc[key] = pr
		}
		for _, a := range s.Attrs() {
			if a.Key == "bytes" && a.Kind == AttrInt {
				pr.Bytes += a.Int
			}
		}
		if s.SimDur > 0 {
			pr.SimSeconds += s.SimDur
		}
		pr.WallSeconds += s.Dur.Seconds()
		pr.Samples++
	}
	out := make([]PhaseRate, 0, len(acc))
	for _, pr := range acc {
		if pr.Bytes > 0 && pr.SimSeconds > 0 {
			pr.MBps = float64(pr.Bytes) / 1e6 / pr.SimSeconds
		}
		out = append(out, *pr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Engine != out[j].Engine {
			return out[i].Engine < out[j].Engine
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}
