package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a process- or deployment-wide metrics store: named counters,
// gauges, and histograms, all safe for concurrent use. A nil *Registry is
// a valid disabled registry — lookups return nil instruments whose methods
// no-op without allocating.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	kinds    map[string]string // name → "counter"|"gauge"|"histogram"
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		kinds:    map[string]string{},
	}
}

// checkKind registers name under kind, panicking with a clear message when
// the name is already an instrument of a different kind. Silent shadowing
// — the same name living in two instrument families, each call site seeing
// its own — would corrupt the exposition (duplicate metric names with
// conflicting types), so a kind conflict is a programmer error surfaced at
// the offending call site, exactly like re-registration panics in the
// standard Prometheus client. Callers hold r.mu.
func (r *Registry) checkKind(name, kind string) {
	if have, ok := r.kinds[name]; ok && have != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as a %s, cannot re-register as a %s", name, have, kind))
	}
	r.kinds[name] = kind
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set records the gauge's current value. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// defaultBuckets are the histogram bounds used when none are given —
// roughly exponential, suitable for both millisecond latencies and
// simulated-second durations.
var defaultBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000}

// Histogram accumulates observations into fixed buckets plus a running
// count and sum.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; final +Inf bucket implied
	counts []int64   // len(bounds)+1
	count  int64
	sum    float64
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// HistogramSnapshot is a histogram's exported state.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	// Sum is the total of all observed values.
	Sum float64 `json:"sum"`
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the cumulative
// buckets, interpolating linearly within the bucket that contains the
// target rank — the same estimate Prometheus's histogram_quantile()
// computes server-side. The first bucket interpolates from zero (all
// registry histograms observe non-negative latencies and volumes); ranks
// landing in the overflow bucket clamp to the highest finite bound, the
// largest value the bucket layout can attest. Returns 0 when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, bound := range s.Bounds {
		in := float64(s.Counts[i])
		if cum+in >= rank && in > 0 {
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			return lower + (bound-lower)*((rank-cum)/in)
		}
		cum += in
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Counter returns the named counter, creating it on first use. Nil
// registry → nil counter (whose Add is a free no-op). Panics if name is
// already registered as a different instrument kind.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		r.checkKind(name, "counter")
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Panics if name
// is already registered as a different instrument kind.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		r.checkKind(name, "gauge")
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (defaults when none are given). Bounds are
// fixed at creation; later calls ignore them. Panics if name is already
// registered as a different instrument kind.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		r.checkKind(name, "histogram")
		b := bounds
		if len(b) == 0 {
			b = defaultBuckets
		}
		b = append([]float64(nil), b...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric, JSON-encodable as a
// flat dump (map keys are sorted by encoding/json, so output is
// deterministic for fixed values).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		h.mu.Lock()
		snap.Histograms[name] = HistogramSnapshot{
			Count:  h.count,
			Sum:    h.sum,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
		}
		h.mu.Unlock()
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteText writes the snapshot as a sorted, human-readable dump:
//
//	counter  jobs_completed_total            12
//	hist     sched_queue_wait_ms             count=12 mean=0.41 p50=0.38 p90=0.8 p99=0.97 sum=4.9
//
// Histogram quantiles are derived from the cumulative buckets (see
// HistogramSnapshot.Quantile), so p50/p90/p99 are bucket-resolution
// estimates, not exact order statistics.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	var names []string
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "counter  %-36s %d\n", n, snap.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "gauge    %-36s %g\n", n, snap.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		if _, err := fmt.Fprintf(w, "hist     %-36s count=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g sum=%.3g\n",
			n, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Sum); err != nil {
			return err
		}
	}
	return nil
}
