package obs

import (
	"math"
	"testing"
)

func TestPhaseRatesAggregatesPerEnginePhase(t *testing.T) {
	r := NewRecorder()
	wf := r.StartSpan(nil, "workflow", "workflow")

	job := r.StartSpan(wf, "job-0", "job")
	job.SetStr("engine", "spark")
	pull := r.StartSpan(job, "pull", "phase")
	pull.SetInt("bytes", 700_000_000)
	pull.SetSim(0, 10)
	pull.End()
	pull2 := r.StartSpan(job, "pull", "phase")
	pull2.SetInt("bytes", 300_000_000)
	pull2.SetSim(10, 10)
	pull2.End()
	proc := r.StartSpan(job, "process", "phase")
	proc.SetSim(20, 4) // no byte attribute: rate must stay zero
	proc.End()
	job.End()

	job2 := r.StartSpan(wf, "job-1", "job")
	job2.SetStr("engine", "naiad")
	push := r.StartSpan(job2, "push", "phase")
	push.SetInt("bytes", 50_000_000)
	push.SetSim(0, 2)
	push.End()
	// A phase without an enclosing engine-stamped job is unattributable
	// and must be dropped.
	stray := r.StartSpan(wf, "pull", "phase")
	stray.SetInt("bytes", 1)
	stray.SetSim(0, 1)
	stray.End()
	job2.End()
	wf.End()

	rates := PhaseRates(r)
	byKey := map[string]PhaseRate{}
	for _, pr := range rates {
		byKey[pr.Engine+"|"+pr.Phase] = pr
	}
	if len(byKey) != 3 {
		t.Fatalf("got %d aggregates (%v), want 3", len(byKey), rates)
	}
	p := byKey["spark|pull"]
	if p.Samples != 2 || p.Bytes != 1_000_000_000 || p.SimSeconds != 20 {
		t.Errorf("spark pull aggregate = %+v", p)
	}
	if math.Abs(p.MBps-50) > 1e-9 {
		t.Errorf("spark pull rate = %v MB/s, want 50", p.MBps)
	}
	if pr := byKey["spark|process"]; pr.MBps != 0 || pr.SimSeconds != 4 {
		t.Errorf("byte-less phase aggregate = %+v", pr)
	}
	if pr := byKey["naiad|push"]; math.Abs(pr.MBps-25) > 1e-9 {
		t.Errorf("naiad push rate = %v MB/s, want 25", pr.MBps)
	}
	// Sorted by engine then phase.
	for i := 1; i < len(rates); i++ {
		a, b := rates[i-1], rates[i]
		if a.Engine > b.Engine || (a.Engine == b.Engine && a.Phase > b.Phase) {
			t.Errorf("unsorted: %v before %v", a, b)
		}
	}
	if got := PhaseRates(NewRecorder()); got != nil {
		t.Errorf("empty recorder yields %v", got)
	}
}
