package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
)

// JobAccuracy compares the cost model's predicted makespan for one job
// against the simulated makespan it actually took.
type JobAccuracy struct {
	Job    string `json:"job"`
	Engine string `json:"engine"`
	// PredictedS is the estimator's planning-time cost (simulated seconds);
	// ActualS the measured simulated duration.
	PredictedS float64 `json:"predicted_s"`
	ActualS    float64 `json:"actual_s"`
	// Error is the signed relative error (actual-predicted)/predicted: the
	// estimator ran long when positive, pessimistic when negative.
	Error float64 `json:"error"`
}

// WorkflowAccuracy aggregates one execution's estimator accuracy: the
// predicted critical path through the job DAG versus the measured makespan,
// plus every job's individual comparison.
type WorkflowAccuracy struct {
	Workflow string `json:"workflow,omitempty"`
	// PredictedMakespanS is the critical path through the job dependency
	// DAG using the estimator's per-job costs — the same accounting the
	// scheduler applies to measured durations.
	PredictedMakespanS float64 `json:"predicted_makespan_s"`
	ActualMakespanS    float64 `json:"actual_makespan_s"`
	// MakespanError is the signed relative makespan error.
	MakespanError float64       `json:"makespan_error"`
	Jobs          []JobAccuracy `json:"jobs"`
}

// RelError returns the signed relative error of actual against predicted,
// defined as 0 when there is no prediction to compare against.
func RelError(predicted, actual float64) float64 {
	if predicted <= 0 || math.IsInf(predicted, 0) || math.IsNaN(predicted) {
		return 0
	}
	return (actual - predicted) / predicted
}

// MeanAbsJobError averages the magnitude of the per-job errors.
func (w *WorkflowAccuracy) MeanAbsJobError() float64 {
	if w == nil || len(w.Jobs) == 0 {
		return 0
	}
	var sum float64
	for _, j := range w.Jobs {
		sum += math.Abs(j.Error)
	}
	return sum / float64(len(w.Jobs))
}

// String renders a one-line summary.
func (w *WorkflowAccuracy) String() string {
	if w == nil {
		return "<no accuracy>"
	}
	return fmt.Sprintf("predicted %.1fs actual %.1fs error %+.0f%% (jobs %d, mean |job error| %.0f%%)",
		w.PredictedMakespanS, w.ActualMakespanS, 100*w.MakespanError,
		len(w.Jobs), 100*w.MeanAbsJobError())
}

// AccuracyLog accumulates workflow accuracy across executions — the
// estimator's measured track record, persisted next to the workflow
// history store. Safe for concurrent use; a nil *AccuracyLog discards
// records.
type AccuracyLog struct {
	mu        sync.Mutex
	workflows []*WorkflowAccuracy
}

// NewAccuracyLog returns an empty log.
func NewAccuracyLog() *AccuracyLog { return &AccuracyLog{} }

// Record appends one execution's accuracy. No-op on nil log or record.
func (l *AccuracyLog) Record(w *WorkflowAccuracy) {
	if l == nil || w == nil {
		return
	}
	l.mu.Lock()
	l.workflows = append(l.workflows, w)
	l.mu.Unlock()
}

// Workflows returns a snapshot of every recorded execution.
func (l *AccuracyLog) Workflows() []*WorkflowAccuracy {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*WorkflowAccuracy(nil), l.workflows...)
}

// AccuracySummary condenses a log: how far off the estimator has been, on
// average and at worst, across recorded executions.
type AccuracySummary struct {
	Workflows int `json:"workflows"`
	Jobs      int `json:"jobs"`
	// MeanMakespanError and MeanAbsMakespanError are the signed mean and
	// the mean magnitude of workflow-level relative errors.
	MeanMakespanError    float64 `json:"mean_makespan_error"`
	MeanAbsMakespanError float64 `json:"mean_abs_makespan_error"`
	MeanAbsJobError      float64 `json:"mean_abs_job_error"`
	// WorstAbsMakespanError is the largest workflow-level |error|.
	WorstAbsMakespanError float64 `json:"worst_abs_makespan_error"`
}

// Summary computes the log's aggregate accuracy.
func (l *AccuracyLog) Summary() AccuracySummary {
	var s AccuracySummary
	if l == nil {
		return s
	}
	var jobErrSum float64
	for _, w := range l.Workflows() {
		s.Workflows++
		s.MeanMakespanError += w.MakespanError
		abs := math.Abs(w.MakespanError)
		s.MeanAbsMakespanError += abs
		if abs > s.WorstAbsMakespanError {
			s.WorstAbsMakespanError = abs
		}
		for _, j := range w.Jobs {
			s.Jobs++
			jobErrSum += math.Abs(j.Error)
		}
	}
	if s.Workflows > 0 {
		s.MeanMakespanError /= float64(s.Workflows)
		s.MeanAbsMakespanError /= float64(s.Workflows)
	}
	if s.Jobs > 0 {
		s.MeanAbsJobError = jobErrSum / float64(s.Jobs)
	}
	return s
}

// persistedAccuracy is the JSON layout of a saved log.
type persistedAccuracy struct {
	Summary   AccuracySummary     `json:"summary"`
	Workflows []*WorkflowAccuracy `json:"workflows"`
}

// Save writes the log (summary plus every record) as JSON to path — the
// sibling artifact of core.History's store.
func (l *AccuracyLog) Save(path string) error {
	p := persistedAccuracy{Summary: l.Summary(), Workflows: l.Workflows()}
	if p.Workflows == nil {
		p.Workflows = []*WorkflowAccuracy{}
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: accuracy: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadAccuracyLog reads a log saved by Save; a missing file yields an
// empty log.
func LoadAccuracyLog(path string) (*AccuracyLog, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewAccuracyLog(), nil
	}
	if err != nil {
		return nil, err
	}
	var p persistedAccuracy
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("obs: accuracy: %s: %w", path, err)
	}
	l := NewAccuracyLog()
	l.workflows = p.Workflows
	return l, nil
}
