package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceOptions configures Chrome trace_event export.
type TraceOptions struct {
	// ZeroTimes zeroes every wall-clock and simulated timestamp and drops
	// float (measurement) attributes, leaving only the structural span
	// tree: names, categories, tracks, and string/integer attributes.
	// Golden tests use it to compare traces byte-for-byte across runs.
	ZeroTimes bool
}

// WriteChromeTrace exports the recorder's spans as Chrome trace_event JSON
// ("X" complete events inside a traceEvents array), loadable by Perfetto
// (ui.perfetto.dev) and chrome://tracing.
//
// Events are emitted in a deterministic structural order — depth-first,
// children sorted by (name, creation ID) — because span creation order is
// scheduling-dependent under concurrent jobs. Track IDs (tid) are assigned
// during that walk: spans marked NewTrack (job attempts) open a fresh
// track; all others inherit their parent's, so concurrent attempts render
// on separate lanes with their engine phases nested beneath them.
//
// Simulated-clock placements ride along as per-event args (sim_start_s,
// sim_dur_s) next to the wall-clock ts/dur, so one trace shows both where
// the real time went and what the cost model accounted.
func (r *Recorder) WriteChromeTrace(w io.Writer, opt TraceOptions) error {
	if r == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	spans := r.Spans()
	children := map[int64][]*Span{}
	for _, s := range spans {
		children[s.Parent] = append(children[s.Parent], s)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].Name != kids[j].Name {
				return kids[i].Name < kids[j].Name
			}
			return kids[i].ID < kids[j].ID
		})
	}

	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	nextTID := int64(0)
	var walk func(s *Span, tid int64) error
	walk = func(s *Span, tid int64) error {
		if s.ownTrack {
			nextTID++
			tid = nextTID
		}
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		if err := writeEvent(w, s, tid, opt); err != nil {
			return err
		}
		for _, c := range children[s.ID] {
			if err := walk(c, tid); err != nil {
				return err
			}
		}
		return nil
	}
	nextTID++
	rootTID := nextTID
	for _, root := range children[0] {
		if err := walk(root, rootTID); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "],\"displayTimeUnit\":\"ms\"}\n")
	return err
}

// writeEvent emits one "X" (complete) event. JSON is assembled by hand so
// args preserve attribute insertion order (encoding/json would sort map
// keys and lose the instrumentation site's intent).
func writeEvent(w io.Writer, s *Span, tid int64, opt TraceOptions) error {
	ts, dur := s.Start.Microseconds(), s.Dur.Microseconds()
	if opt.ZeroTimes {
		ts, dur = 0, 0
	}
	name, err := json.Marshal(s.Name)
	if err != nil {
		return err
	}
	cat, err := json.Marshal(s.Cat)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, `{"name":%s,"cat":%s,"ph":"X","ts":%d,"dur":%d,"pid":1,"tid":%d,"args":{`,
		name, cat, ts, dur, tid); err != nil {
		return err
	}
	wroteArg := false
	arg := func(key string, val string) error {
		k, err := json.Marshal(key)
		if err != nil {
			return err
		}
		if wroteArg {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		wroteArg = true
		_, err = fmt.Fprintf(w, "%s:%s", k, val)
		return err
	}
	if !opt.ZeroTimes && s.SimDur >= 0 {
		start := s.SimStart
		if start < 0 {
			start = 0
		}
		if err := arg("sim_start_s", fmt.Sprintf("%g", start)); err != nil {
			return err
		}
		if err := arg("sim_dur_s", fmt.Sprintf("%g", s.SimDur)); err != nil {
			return err
		}
	}
	for _, a := range s.Attrs() {
		switch a.Kind {
		case AttrStr:
			v, err := json.Marshal(a.Str)
			if err != nil {
				return err
			}
			if err := arg(a.Key, string(v)); err != nil {
				return err
			}
		case AttrInt:
			if err := arg(a.Key, fmt.Sprintf("%d", a.Int)); err != nil {
				return err
			}
		case AttrFloat:
			if opt.ZeroTimes {
				continue // measurements are run-dependent; drop for goldens
			}
			if err := arg(a.Key, fmt.Sprintf("%g", a.Float)); err != nil {
				return err
			}
		}
	}
	_, err = io.WriteString(w, "}}")
	return err
}
