package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/metrics.golden.prom from current exporter output")

// promRegistry builds a registry with fixed, representative contents: the
// golden fixture and the byte-stability subject.
func promRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("sched_jobs_completed_total").Add(12)
	reg.Counter("dfs_pull_bytes_total").Add(1 << 31)
	reg.Counter("workflows_failed_total") // registered but never incremented
	reg.Gauge("sched_workers").Set(8)
	reg.Gauge("estimator_mean_error").Set(-0.125)
	h := reg.Histogram("sched_queue_wait_ms", 1, 5, 10, 50)
	for _, v := range []float64{0.5, 0.5, 3, 7, 7, 7, 42, 1000} {
		h.Observe(v)
	}
	reg.Histogram("chaos_recovery_s", 0.1, 1, 10) // empty histogram
	return reg
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run TestPrometheusGolden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestPrometheusByteStableAcrossScrapes(t *testing.T) {
	reg := promRegistry()
	var a, b bytes.Buffer
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two scrapes of an idle registry differ:\n%s\n--\n%s", a.String(), b.String())
	}
}

func TestPrometheusLinesValid(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePromText(buf.String()); err != nil {
		t.Fatalf("%v\nfull exposition:\n%s", err, buf.String())
	}
}

func TestPrometheusHistogramCumulative(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	// sched_queue_wait_ms observed {0.5,0.5,3,7,7,7,42,1000} over bounds
	// 1,5,10,50 → cumulative 2,3,6,7 and +Inf = 8.
	for _, want := range []string{
		`sched_queue_wait_ms_bucket{le="1"} 2`,
		`sched_queue_wait_ms_bucket{le="5"} 3`,
		`sched_queue_wait_ms_bucket{le="10"} 6`,
		`sched_queue_wait_ms_bucket{le="50"} 7`,
		`sched_queue_wait_ms_bucket{le="+Inf"} 8`,
		`sched_queue_wait_ms_count 8`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing %q in exposition:\n%s", want, text)
		}
	}
	// The empty histogram still exposes its full shape.
	if !strings.Contains(text, `chaos_recovery_s_bucket{le="+Inf"} 0`+"\n") {
		t.Errorf("empty histogram not exposed:\n%s", text)
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"sched_jobs_total": "sched_jobs_total",
		"weird metric-né":  "weird_metric_n__", // é is two UTF-8 bytes
		"0starts_digit":    "_starts_digit",
		"":                 "_",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q", 10, 20, 30, 40)
	// 100 observations at bucket midpoints-ish, uniform in (0,40): 25 per
	// bucket (offset by half a step so none lands exactly on a bound).
	for i := 0; i < 100; i++ {
		h.Observe((float64(i) + 0.5) * 0.4)
	}
	s := reg.Snapshot().Histograms["q"]
	if got := s.Quantile(0.5); math.Abs(got-20) > 1e-9 {
		t.Errorf("p50 = %g, want 20", got)
	}
	if got := s.Quantile(0.9); math.Abs(got-36) > 1e-9 {
		t.Errorf("p90 = %g, want 36", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Errorf("p0 = %g, want 0", got)
	}
	if got := s.Quantile(1); math.Abs(got-40) > 1e-9 {
		t.Errorf("p100 = %g, want 40", got)
	}

	// Ranks landing in the overflow bucket clamp to the top finite bound.
	h2 := reg.Histogram("q2", 1, 2)
	h2.Observe(0.5)
	h2.Observe(100)
	h2.Observe(200)
	s2 := reg.Snapshot().Histograms["q2"]
	if got := s2.Quantile(0.99); got != 2 {
		t.Errorf("overflow p99 = %g, want 2 (top finite bound)", got)
	}

	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

func TestRegistryRejectsKindConflicts(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total").Add(1)
	// Same name, same kind: fine, same instrument back.
	if reg.Counter("jobs_total") == nil {
		t.Fatal("re-fetching a counter by name must return it")
	}
	// Same name, different kind: a clear panic naming both kinds.
	assertPanics(t, "counter→gauge", "already registered as a counter", func() { reg.Gauge("jobs_total") })
	assertPanics(t, "counter→histogram", "already registered as a counter", func() { reg.Histogram("jobs_total") })
	reg.Histogram("wait_ms").Observe(1)
	assertPanics(t, "histogram→counter", "already registered as a histogram", func() { reg.Counter("wait_ms") })
	reg.Gauge("workers").Set(4)
	assertPanics(t, "gauge→histogram", "already registered as a gauge", func() { reg.Histogram("workers") })
}

func assertPanics(t *testing.T, name, wantMsg string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("%s: expected a kind-conflict panic, got none", name)
			return
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, wantMsg) {
			t.Errorf("%s: panic %q does not name the registered kind (%q)", name, msg, wantMsg)
		}
	}()
	fn()
}
