package obs

import (
	"strconv"
	"sync"
	"time"
)

// The run registry is the queryable third leg of the telemetry plane: a
// bounded in-process ring of execution digests — per-phase span rollups,
// predicted-vs-measured accuracy, chaos/recovery counts, the chosen engine
// per fragment — retained for the last N executions and served by the
// debug server (/debug/runs, /debug/runs/<id>/trace). Where the metrics
// registry answers "how much, cumulatively" and the flight recorder
// answers "what happened inside one run", the run registry answers "what
// were the recent runs, and how did their plans hold up".

// RunJobDigest summarizes one scheduled job of a finished execution: which
// engine the partitioner chose for the fragment, and how the prediction
// held up.
type RunJobDigest struct {
	Job    string `json:"job"`
	Engine string `json:"engine"`
	// PredictedS / ActualS are the cost model's planning-time estimate and
	// the measured simulated duration; Error is the signed relative error.
	PredictedS float64 `json:"predicted_s"`
	ActualS    float64 `json:"actual_s"`
	Error      float64 `json:"error"`
}

// RunDigest is the retained summary of one workflow execution.
type RunDigest struct {
	// ID is assigned by the registry at Record time (monotonic, unique for
	// the process lifetime) and addresses the run in /debug/runs/<id>.
	ID string `json:"id"`
	// Workflow names the execution by its sink relations.
	Workflow string `json:"workflow,omitempty"`
	// Namespace is the execution's DFS session prefix.
	Namespace string `json:"namespace,omitempty"`
	// Tenant names the tenant the execution ran for ("" outside serve
	// mode's multi-tenant sessions).
	Tenant string `json:"tenant,omitempty"`
	// Start and WallMS place the execution on the real clock.
	Start  time.Time `json:"start"`
	WallMS float64   `json:"wall_ms"`
	// Status is "ok" or "failed"; Err carries the failure message.
	Status string `json:"status"`
	Err    string `json:"err,omitempty"`
	// MakespanS / PredictedS / MakespanError are the measured simulated
	// makespan, the planner's critical-path prediction, and the signed
	// relative error between them.
	MakespanS     float64 `json:"makespan_s"`
	PredictedS    float64 `json:"predicted_makespan_s"`
	MakespanError float64 `json:"makespan_error"`
	// Jobs lists every scheduled job with its chosen engine and accuracy.
	Jobs []RunJobDigest `json:"jobs,omitempty"`
	// Phases are the per-(engine, phase) span rollups of the run's flight
	// recorder (empty when the run was not traced).
	Phases []PhaseRate `json:"phases,omitempty"`
	// Chaos/recovery accounting, aggregated across the run's engine jobs.
	Faults      int     `json:"faults,omitempty"`
	RecoveryS   float64 `json:"recovery_s,omitempty"`
	Checkpoints int     `json:"checkpoints,omitempty"`
	DFSRetries  int     `json:"dfs_retries,omitempty"`
	OOM         bool    `json:"oom,omitempty"`
	// Spans counts the run's recorded spans; Traced reports whether the
	// registry retains the recorder (i.e. /debug/runs/<id>/trace serves).
	Spans  int  `json:"spans,omitempty"`
	Traced bool `json:"traced"`
}

// runEntry pairs a digest with its (optional) retained flight recorder.
type runEntry struct {
	d   RunDigest
	rec *Recorder
}

// RunRegistry retains digests of the last N executions. Safe for
// concurrent use; a nil *RunRegistry discards records and serves nothing,
// so the registry can be plumbed unconditionally.
type RunRegistry struct {
	mu      sync.Mutex
	limit   int
	seq     int64
	entries []runEntry // oldest first; bounded to limit
}

// DefaultRunRetention is how many executions a deployment retains when no
// explicit retention is configured.
const DefaultRunRetention = 64

// NewRunRegistry builds a registry retaining the last n executions
// (DefaultRunRetention when n <= 0).
func NewRunRegistry(n int) *RunRegistry {
	if n <= 0 {
		n = DefaultRunRetention
	}
	return &RunRegistry{limit: n}
}

// Limit returns the retention bound.
func (r *RunRegistry) Limit() int {
	if r == nil {
		return 0
	}
	return r.limit
}

// Record stores one execution's digest (assigning and returning its ID)
// along with its flight recorder, which the debug server serves as a
// Chrome trace; rec may be nil for untraced runs. The oldest digest is
// evicted once the retention bound is exceeded. No-op (returning "") on a
// nil registry.
func (r *RunRegistry) Record(d RunDigest, rec *Recorder) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	d.ID = "r" + strconv.FormatInt(r.seq, 10)
	d.Spans = rec.Len()
	d.Traced = rec != nil
	r.entries = append(r.entries, runEntry{d: d, rec: rec})
	if len(r.entries) > r.limit {
		// Shift in place instead of re-slicing so evicted entries do not
		// pin the backing array's recorders.
		copy(r.entries, r.entries[1:])
		r.entries[len(r.entries)-1] = runEntry{}
		r.entries = r.entries[:len(r.entries)-1]
	}
	return d.ID
}

// Runs returns the retained digests, newest first.
func (r *RunRegistry) Runs() []RunDigest {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RunDigest, 0, len(r.entries))
	for i := len(r.entries) - 1; i >= 0; i-- {
		out = append(out, r.entries[i].d)
	}
	return out
}

// Len reports how many digests are retained.
func (r *RunRegistry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Get returns the digest with the given ID and its retained recorder (nil
// for untraced runs); ok is false when the ID is unknown or evicted.
func (r *RunRegistry) Get(id string) (RunDigest, *Recorder, bool) {
	if r == nil {
		return RunDigest{}, nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.entries) - 1; i >= 0; i-- {
		if r.entries[i].d.ID == id {
			return r.entries[i].d, r.entries[i].rec, true
		}
	}
	return RunDigest{}, nil, false
}
