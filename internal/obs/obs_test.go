package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndAttrs(t *testing.T) {
	rec := NewRecorder()
	root := rec.StartSpan(nil, "workflow", "pipeline")
	child := rec.StartSpan(root, "schedule", "pipeline")
	child.SetStr("engine", "spark")
	child.SetInt("attempt", 2)
	child.SetFloat("queue_wait_ms", 1.5)
	child.SetSim(0, 42)
	child.End()
	root.End()

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatalf("child parent = %d, want %d", spans[1].Parent, spans[0].ID)
	}
	if got := len(child.Attrs()); got != 3 {
		t.Fatalf("got %d attrs, want 3", got)
	}
	if child.SimDur != 42 {
		t.Fatalf("SimDur = %v, want 42", child.SimDur)
	}
	if child.Dur < 0 || root.Dur < child.Dur {
		t.Fatalf("durations not nested: root %v child %v", root.Dur, child.Dur)
	}
}

func TestEndIdempotent(t *testing.T) {
	rec := NewRecorder()
	s := rec.StartSpan(nil, "x", "y")
	s.End()
	d := s.Dur
	time.Sleep(time.Millisecond)
	s.End()
	if s.Dur != d {
		t.Fatal("second End moved the duration")
	}
}

// TestDisabledPathAllocs is the hot-path guard: with observability disabled
// (nil recorder, nil registry, nil or level-gated logger) every
// instrumentation call must be a free no-op — zero allocations — so the
// kernel and scheduler hot paths pay nothing when no one is watching.
// ci.sh runs this test explicitly.
func TestDisabledPathAllocs(t *testing.T) {
	var rec *Recorder
	var reg *Registry
	var log *Logger
	// A real logger whose handler level suppresses the emitted events: the
	// Enabled gate must reject them before any allocation.
	gated := NewJSONLogger(io.Discard, slog.LevelError).WithRun("r1").WithJob("j")
	err := errors.New("boom")
	allocs := testing.AllocsPerRun(1000, func() {
		sp := rec.StartSpan(nil, "job", "job")
		sp.NewTrack()
		sp.SetStr("engine", "spark")
		sp.SetInt("attempt", 1)
		sp.SetFloat("queue_wait_ms", 0.25)
		sp.SetSim(0, 1)
		sp.End()
		reg.Counter("jobs_completed_total").Add(1)
		reg.Gauge("workers").Set(4)
		reg.Histogram("sched_queue_wait_ms").Observe(0.25)
		log.WithJob("j").WithAttempt(1).
			Info("job_complete").Str("engine", "spark").Int("attempt", 1).Float("s", 0.25).Bool("ok", true).Err(err).Emit()
		gated.Debug("job_dispatch").Str("engine", "spark").Int("attempt", 1).Emit()
		gated.Info("job_complete").Float("s", 0.25).Err(err).Emit()
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocated %.1f times per op, want 0", allocs)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("n").Add(1)
				reg.Histogram("h").Observe(float64(i))
				reg.Gauge("g").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("n").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	snap := reg.Snapshot()
	if snap.Histograms["h"].Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", snap.Histograms["h"].Count)
	}
}

func TestRecorderConcurrentSpans(t *testing.T) {
	rec := NewRecorder()
	root := rec.StartSpan(nil, "workflow", "pipeline")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := rec.StartSpan(root, "job", "job")
				s.SetInt("i", int64(i))
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := rec.Len(); got != 801 {
		t.Fatalf("got %d spans, want 801", got)
	}
}

func TestChromeTraceValidJSONAndOrder(t *testing.T) {
	rec := NewRecorder()
	root := rec.StartSpan(nil, "workflow", "pipeline")
	b := rec.StartSpan(root, "b-job", "job")
	b.NewTrack()
	b.End()
	a := rec.StartSpan(root, "a-job", "job")
	a.NewTrack()
	a.SetStr("engine", "hadoop")
	a.End()
	root.End()

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, TraceOptions{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	// Structural order: children sorted by name regardless of creation
	// order, so concurrent runs export identically.
	if doc.TraceEvents[1].Name != "a-job" || doc.TraceEvents[2].Name != "b-job" {
		t.Fatalf("events not name-sorted: %q then %q", doc.TraceEvents[1].Name, doc.TraceEvents[2].Name)
	}
	// Job spans get their own tracks; the root keeps its own.
	if doc.TraceEvents[1].TID == doc.TraceEvents[0].TID || doc.TraceEvents[1].TID == doc.TraceEvents[2].TID {
		t.Fatalf("expected distinct tracks, got tids %d %d %d",
			doc.TraceEvents[0].TID, doc.TraceEvents[1].TID, doc.TraceEvents[2].TID)
	}
	if doc.TraceEvents[1].Args["engine"] != "hadoop" {
		t.Fatalf("missing engine arg: %v", doc.TraceEvents[1].Args)
	}
}

func TestChromeTraceZeroTimesDeterministic(t *testing.T) {
	build := func() *Recorder {
		rec := NewRecorder()
		root := rec.StartSpan(nil, "workflow", "pipeline")
		j := rec.StartSpan(root, "job:x", "job")
		j.SetFloat("wall_ms", float64(time.Now().UnixNano()%997)) // run-dependent
		j.SetInt("attempt", 0)
		j.SetSim(0, 12.5)
		j.End()
		root.End()
		time.Sleep(time.Millisecond) // perturb wall timings
		return rec
	}
	var buf1, buf2 bytes.Buffer
	if err := build().WriteChromeTrace(&buf1, TraceOptions{ZeroTimes: true}); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&buf2, TraceOptions{ZeroTimes: true}); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatalf("zeroed traces differ:\n%s\n--\n%s", buf1.String(), buf2.String())
	}
	if strings.Contains(buf1.String(), "wall_ms") {
		t.Fatal("ZeroTimes kept a float measurement attribute")
	}
	if !strings.Contains(buf1.String(), `"attempt":0`) {
		t.Fatal("ZeroTimes dropped a structural integer attribute")
	}
}

// TestChromeTraceEscapesHostileNames proves span names, categories, attr
// keys, and string values containing quotes, backslashes, control bytes,
// and multi-byte UTF-8 survive the trace export as valid JSON and decode
// back to the original strings (the writer escapes via json.Marshal — this
// pins that contract).
func TestChromeTraceEscapesHostileNames(t *testing.T) {
	hostile := `sel "σ" \ slash
newline	tab 日本語 🎯`
	rec := NewRecorder()
	root := rec.StartSpan(nil, hostile, `cat"egory\`)
	root.SetStr(`key"with\quotes`, hostile)
	root.End()

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, TraceOptions{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("hostile names broke the trace JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("got %d events, want 1", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != hostile {
		t.Errorf("name did not round-trip: %q", ev.Name)
	}
	if ev.Cat != `cat"egory\` {
		t.Errorf("category did not round-trip: %q", ev.Cat)
	}
	if ev.Args[`key"with\quotes`] != hostile {
		t.Errorf("attr did not round-trip: %v", ev.Args)
	}
}

func TestNilRecorderTrace(t *testing.T) {
	var rec *Recorder
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, TraceOptions{}); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-recorder trace not valid JSON: %v", err)
	}
}

func TestAccuracyLogSummarySaveLoad(t *testing.T) {
	l := NewAccuracyLog()
	l.Record(&WorkflowAccuracy{
		Workflow: "a", PredictedMakespanS: 100, ActualMakespanS: 120, MakespanError: 0.2,
		Jobs: []JobAccuracy{{Job: "j1", Engine: "spark", PredictedS: 100, ActualS: 120, Error: 0.2}},
	})
	l.Record(&WorkflowAccuracy{
		Workflow: "b", PredictedMakespanS: 50, ActualMakespanS: 40, MakespanError: -0.2,
		Jobs: []JobAccuracy{{Job: "j1", Engine: "hadoop", PredictedS: 50, ActualS: 40, Error: -0.2}},
	})
	s := l.Summary()
	if s.Workflows != 2 || s.Jobs != 2 {
		t.Fatalf("summary counts = %+v", s)
	}
	if s.MeanMakespanError != 0 || s.MeanAbsMakespanError != 0.2 {
		t.Fatalf("summary errors = %+v", s)
	}

	path := filepath.Join(t.TempDir(), "acc.json")
	if err := l.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAccuracyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Summary(); got != s {
		t.Fatalf("round-trip summary = %+v, want %+v", got, s)
	}
	if _, err := LoadAccuracyLog(filepath.Join(t.TempDir(), "missing.json")); err != nil {
		t.Fatalf("missing file should yield empty log, got %v", err)
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAccuracyLog(path); err == nil {
		t.Fatal("corrupt accuracy file should error")
	}
}

func TestRelError(t *testing.T) {
	if got := RelError(100, 150); got != 0.5 {
		t.Fatalf("RelError(100,150) = %v", got)
	}
	if got := RelError(0, 10); got != 0 {
		t.Fatalf("RelError(0,10) = %v, want 0", got)
	}
}
