package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-exposition export (format version 0.0.4) for the metrics
// registry — the scrape half of the live telemetry plane. Everything here
// is stdlib-only and deterministic: families are emitted counters → gauges
// → histograms, name-sorted within each block, and floats are rendered
// with strconv's shortest round-trip formatting, so two scrapes of an idle
// registry are byte-identical. Histogram buckets follow the Prometheus
// convention: cumulative counts per `le` upper bound, a final `+Inf`
// bucket equal to `_count`, plus `_sum` and `_count` series.

// PromContentType is the Content-Type of the text exposition format, set
// by the debug server's /metrics handler.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry metric name into a legal Prometheus metric
// name ([a-zA-Z_:][a-zA-Z0-9_:]*). Registry names are already Go
// identifiers with underscores; this is the safety net for anything else.
func promName(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		legal := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !legal {
			ok = false
			break
		}
	}
	if ok && name != "" {
		return name
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_' || c == ':',
			c >= 'a' && c <= 'z',
			c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9' && b.Len() > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat renders a float64 as Prometheus expects: shortest exact
// decimal, with the special values spelled +Inf/-Inf/NaN.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Exposition-format line shapes: `# TYPE <name> <type>` comments, then
// samples `<name>[{le="<bound>"}] <value>`.
var (
	promTypeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)
)

// ValidatePromText checks every line of a text exposition for well-formed
// TYPE comments and sample lines with parseable values — the scrape
// validator behind ci.sh's debug-server stage and the exporter's own
// tests. Returns the first malformed line's error, or nil.
func ValidatePromText(text string) error {
	sc := bufio.NewScanner(strings.NewReader(text))
	line := 0
	for sc.Scan() {
		line++
		l := sc.Text()
		if l == "" {
			continue
		}
		if strings.HasPrefix(l, "#") {
			if !promTypeRe.MatchString(l) {
				return fmt.Errorf("malformed exposition line %d: %s", line, l)
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(l)
		if m == nil {
			return fmt.Errorf("malformed exposition line %d: %s", line, l)
		}
		if val := m[3]; val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				return fmt.Errorf("malformed exposition line %d (bad value %q): %s", line, val, l)
			}
		}
	}
	return sc.Err()
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format. Output is deterministic for fixed metric values: counter, gauge,
// and histogram families are each sorted by name, so an idle registry
// scrapes byte-identically every time.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(snap.Gauges[n])); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
