package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestRunRegistryRecordGetEvict(t *testing.T) {
	reg := NewRunRegistry(3)
	if reg.Limit() != 3 {
		t.Fatalf("Limit = %d, want 3", reg.Limit())
	}
	var ids []string
	for i := 0; i < 5; i++ {
		rec := NewRecorder()
		rec.StartSpan(nil, "workflow", "pipeline").End()
		id := reg.Record(RunDigest{Workflow: fmt.Sprintf("w%d", i), Status: "ok"}, rec)
		ids = append(ids, id)
	}
	if reg.Len() != 3 {
		t.Fatalf("Len = %d, want retention bound 3", reg.Len())
	}
	// IDs stay unique and monotonic across evictions.
	if ids[0] == ids[4] || ids[4] != "r5" {
		t.Fatalf("ids = %v", ids)
	}
	// Oldest two evicted, newest three retained, newest first.
	runs := reg.Runs()
	if len(runs) != 3 || runs[0].Workflow != "w4" || runs[2].Workflow != "w2" {
		t.Fatalf("runs = %+v", runs)
	}
	if _, _, ok := reg.Get(ids[0]); ok {
		t.Fatal("evicted run still addressable")
	}
	d, rec, ok := reg.Get(ids[4])
	if !ok || d.Workflow != "w4" || rec == nil {
		t.Fatalf("Get(%s) = %+v, rec=%v, ok=%v", ids[4], d, rec, ok)
	}
	if !d.Traced || d.Spans != 1 {
		t.Fatalf("digest not annotated with recorder state: %+v", d)
	}
}

func TestRunRegistryUntracedRun(t *testing.T) {
	reg := NewRunRegistry(0) // default retention
	if reg.Limit() != DefaultRunRetention {
		t.Fatalf("default retention = %d", reg.Limit())
	}
	id := reg.Record(RunDigest{Status: "failed", Err: "boom"}, nil)
	d, rec, ok := reg.Get(id)
	if !ok || rec != nil || d.Traced || d.Spans != 0 {
		t.Fatalf("untraced digest = %+v rec=%v ok=%v", d, rec, ok)
	}
}

func TestRunRegistryNilSafe(t *testing.T) {
	var reg *RunRegistry
	if id := reg.Record(RunDigest{}, nil); id != "" {
		t.Fatalf("nil registry assigned id %q", id)
	}
	if reg.Runs() != nil || reg.Len() != 0 || reg.Limit() != 0 {
		t.Fatal("nil registry not inert")
	}
	if _, _, ok := reg.Get("r1"); ok {
		t.Fatal("nil registry resolved an id")
	}
}

func TestRunRegistryConcurrent(t *testing.T) {
	reg := NewRunRegistry(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				reg.Record(RunDigest{Status: "ok"}, nil)
				reg.Runs()
				reg.Get("r1")
			}
		}()
	}
	wg.Wait()
	if reg.Len() != 16 {
		t.Fatalf("Len = %d, want 16", reg.Len())
	}
}
