package obs

import (
	"context"
	"io"
	"log/slog"
)

// Logger is the execution stack's leveled, structured run logger: every
// admission, dispatch, retry, fault recovery, speculation, and calibration
// update emits one machine-parseable record through it. It follows the rest
// of obs's two invariants:
//
//   - Free when disabled. A nil *Logger is the disabled logger: scoping
//     methods return nil, event constructors return a nil *Event whose
//     field setters and Emit no-op — zero allocations end to end, so
//     instrumentation sites need no conditionals. Events below the
//     handler's level are equally free: the constructor checks Enabled
//     before allocating anything.
//
//   - Race safety. A Logger is an immutable view over a slog.Handler
//     (scoping derives new Loggers); slog handlers are safe for concurrent
//     use, so one deployment logger is shared by every goroutine of every
//     concurrent execution.
//
// Schema contract (DESIGN.md §14): the record message is the event name
// (snake_case, subsystem-prefixed: job_dispatch, while_replan,
// fault_recovery, …); run/job/attempt scope rides as the `run`, `job`, and
// `attempt` attributes bound via WithRun/WithJob/WithAttempt; payload
// fields are flat typed key-values.
type Logger struct {
	s *slog.Logger
}

// emitCtx is the root context handed to slog handlers: log emission has no
// caller context to forward (events outlive any one job's ctx) and
// handlers only consult it for tracing integrations.
var emitCtx = context.Background() //mkvet:ignore context-discipline slog handlers require a ctx but log emission has no caller context to forward; handlers never derive cancellation from it

// NewLogger wraps a slog handler. A nil handler yields the disabled (nil)
// logger.
func NewLogger(h slog.Handler) *Logger {
	if h == nil {
		return nil
	}
	return &Logger{s: slog.New(h)}
}

// NewJSONLogger builds a logger emitting one JSON object per event to w at
// the given minimum level — the machine-parseable default for run logs.
func NewJSONLogger(w io.Writer, level slog.Level) *Logger {
	return NewLogger(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// NewTextLogger builds a logger emitting logfmt-style key=value lines — the
// human-tail default for -run-log on a terminal.
func NewTextLogger(w io.Writer, level slog.Level) *Logger {
	return NewLogger(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// WithRun scopes the logger to one execution: every event it emits carries
// run=id. Nil-safe.
func (l *Logger) WithRun(id string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(slog.String("run", id))}
}

// WithJob scopes the logger to one job of a run.
func (l *Logger) WithJob(job string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(slog.String("job", job))}
}

// WithAttempt scopes the logger to one attempt of a job.
func (l *Logger) WithAttempt(attempt int) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(slog.Int("attempt", attempt))}
}

// Event is one in-flight log record: a level, an event name, and typed
// key-value fields appended fluently before Emit. A nil *Event (disabled
// logger, or level below the handler's threshold) no-ops every method.
type Event struct {
	l     *slog.Logger
	level slog.Level
	msg   string
	attrs []slog.Attr
}

// event starts a record if the level is enabled; the Enabled check runs
// before any allocation so suppressed events are free.
func (l *Logger) event(level slog.Level, name string) *Event {
	if l == nil || !l.s.Enabled(emitCtx, level) {
		return nil
	}
	return &Event{l: l.s, level: level, msg: name}
}

// Debug starts a debug-level event (per-dispatch noise: admission, skips,
// WHILE iterations).
func (l *Logger) Debug(name string) *Event { return l.event(slog.LevelDebug, name) }

// Info starts an info-level event (lifecycle: completions, speculation,
// re-plans).
func (l *Logger) Info(name string) *Event { return l.event(slog.LevelInfo, name) }

// Warn starts a warn-level event (recovered trouble: retries, injected
// faults, stragglers).
func (l *Logger) Warn(name string) *Event { return l.event(slog.LevelWarn, name) }

// Error starts an error-level event (propagated failures).
func (l *Logger) Error(name string) *Event { return l.event(slog.LevelError, name) }

// Str attaches a string field.
func (e *Event) Str(key, val string) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.String(key, val))
	return e
}

// Int attaches an integer field.
func (e *Event) Int(key string, val int64) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.Int64(key, val))
	return e
}

// Float attaches a float field.
func (e *Event) Float(key string, val float64) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.Float64(key, val))
	return e
}

// Bool attaches a boolean field.
func (e *Event) Bool(key string, val bool) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.Bool(key, val))
	return e
}

// Err attaches the error's message under "err" (skipped for nil errors).
func (e *Event) Err(err error) *Event {
	if e == nil || err == nil {
		return e
	}
	e.attrs = append(e.attrs, slog.String("err", err.Error()))
	return e
}

// Emit hands the record to the handler. No-op on nil.
func (e *Event) Emit() {
	if e == nil {
		return
	}
	e.l.LogAttrs(emitCtx, e.level, e.msg, e.attrs...)
}
