package engines

// This file holds the calibrated performance profiles of the seven
// back-ends. The constants are the "one-off calibration" of paper §5.2
// (Table 1: PULL, LOAD, PROCESS, PUSH rates) expressed per node, plus the
// per-job overheads and paradigm quirks that the paper's motivation and
// evaluation sections attribute to each system:
//
//   - Hadoop: large per-job startup (JVM spawn, scheduling), streams well
//     from HDFS in parallel, materializes between jobs, one shuffle/job.
//   - Spark: moderate startup, loads inputs into in-memory RDDs before
//     computing (a wasted pass for no-reuse workflows, §2.1), native
//     iteration, in-memory working set capped by cluster RAM (§6.7 k-means
//     OOM).
//   - Naiad: small startup, streaming one-job execution, native iteration.
//     The Musketeer-modified deployment has parallel HDFS I/O (Table 2);
//     the Lindi-native baseline below keeps the single reader thread per
//     machine and the non-associative high-level GROUP BY (§6.2).
//   - PowerGraph: GAS only; expensive ingest (graph partitioning/sharding,
//     its LOAD rate) buys very fast well-sharded iterations; no benefit
//     beyond 16 nodes (§2.2 footnote).
//   - GraphChi: single machine, out-of-core vertex-centric; cheap startup,
//     shard-construction load phase, competitive per-iteration rate.
//   - Metis: single-machine in-memory MapReduce; nearly free startup, fast
//     processing while the working set fits in RAM, thrashing beyond.
//   - Serial C: a compiled single-threaded program; negligible startup,
//     surprisingly decent throughput, no parallelism at all.
//
// Rates are MB/s of logical (paper-scale) data. They were chosen so that
// the motivating micro-benchmarks (§2) and the evaluation figures
// reproduce their published crossover points on 2014-era hardware
// (m1.xlarge: ~100 MB/s disk, ~120 MB/s network per node); see
// EXPERIMENTS.md for the paper-vs-measured comparison.

// Hadoop returns the Hadoop MapReduce engine.
func Hadoop() *Engine {
	return &Engine{
		name: "hadoop", paradigm: ParadigmMapReduce, dialect: dialectHadoop,
		prof: Profile{
			PerJobOverheadS: 30,
			PullMBps:        110, PushMBps: 55, // 3x-replicated writes
			LoadMBps: 0, ProcMBps: 75,
			ShuffleMBps:     30,  // sort-spill-transfer-merge pipeline
			ShuffleFactor:   1.2, // spill/sort/merge around the shuffle
			NativeIteration: false,
			CodegenTaxPct:   18, NaiveFactor: 1.9,
		},
	}
}

// Spark returns the Spark engine.
func Spark() *Engine {
	return &Engine{
		name: "spark", paradigm: ParadigmGeneral, dialect: dialectSpark,
		prof: Profile{
			PerJobOverheadS: 20,
			PullMBps:        70, PushMBps: 90,
			LoadMBps:        130, // eager RDD materialization (inputs and results)
			LoadOutputs:     true,
			ProcMBps:        110,
			NativeIteration: true,
			ShuffleMBps:     25,                 // Spark 0.9 hash-shuffle: many small files
			MemCapGB:        4, ThrashFactor: 4, // executor heap, not raw RAM
			CrossJoinBlowup: 16,                   // cartesian(): task per partition pair (§6.7 OOM)
			CodegenTaxPct:   22, NaiveFactor: 1.8, // simple type inference: extra pass (§6.4)
		},
	}
}

// Naiad returns the (Musketeer-modified, parallel-I/O) Naiad engine.
func Naiad() *Engine {
	return &Engine{
		name: "naiad", paradigm: ParadigmGeneral, dialect: dialectNaiad,
		prof: Profile{
			PerJobOverheadS: 18, // 100-node .NET process spin-up + graph construction
			PullMBps:        115, PushMBps: 100,
			LoadMBps: 0, ProcMBps: 140,
			ShuffleMBps:    45,                  // streaming channels, no spill
			GraphProcMBps:  220,                 // GraphLINQ-style vertex ops
			GraphMemFactor: 6,                   // managed-heap vertex/edge objects
			MemCapGB:       11, ThrashFactor: 5, // in-memory dataflow state
			NativeIteration: true,
			CheckpointS:     60, // periodic global checkpoint of dataflow state
			CodegenTaxPct:   2, NaiveFactor: 1.6, // "virtually non-existent" (§6.4)
		},
	}
}

// NaiadLindi returns the Lindi-native baseline: stock Naiad 0.2 with a
// single input reader thread per machine and Lindi's non-associative
// high-level GROUP BY that collects data on one machine (§2.1, §6.2).
// Musketeer never generates code for this engine; it exists as the
// comparison baseline in Figures 2 and 7.
func NaiadLindi() *Engine {
	return &Engine{
		name: "naiad-lindi", paradigm: ParadigmGeneral, dialect: dialectNaiad,
		prof: Profile{
			PerJobOverheadS: 18,
			PullMBps:        12, // single reader thread per machine
			PushMBps:        15, // single writer (§2.1 JOIN discussion)
			LoadMBps:        0, ProcMBps: 140,
			ShuffleMBps:     35,
			NativeIteration: true,
			NonAssocGroupBy: true,
			CheckpointS:     60,
			CodegenTaxPct:   0, NaiveFactor: 1.6,
		},
	}
}

// PowerGraph returns the PowerGraph GAS engine.
func PowerGraph() *Engine {
	return &Engine{
		name: "powergraph", paradigm: ParadigmVertexCentric, dialect: dialectPowerGraph,
		prof: Profile{
			PerJobOverheadS: 15,
			PullMBps:        100, PushMBps: 90,
			LoadMBps:       55, // vertex-cut partitioning of the input graph
			ProcMBps:       100,
			GraphProcMBps:  300,                 // sharding minimizes communication
			GraphMemFactor: 6,                   // in-memory vertex/edge structures vs edge list
			MemCapGB:       12, ThrashFactor: 6, // strictly in-memory system
			NativeIteration: true,
			MaxUsefulNodes:  16, // §2.2: no benefit beyond 16 nodes
			CheckpointS:     90, // snapshot algorithm amortized over longer epochs
			CodegenTaxPct:   12, NaiveFactor: 1.5,
		},
	}
}

// GraphChi returns the GraphChi single-machine engine.
func GraphChi() *Engine {
	return &Engine{
		name: "graphchi", paradigm: ParadigmVertexCentric, dialect: dialectGraphChi,
		prof: Profile{
			PerJobOverheadS: 3,
			PullMBps:        95, PushMBps: 95, // Musketeer-added HDFS connector (Table 2)
			LoadMBps:        75, // shard construction
			ProcMBps:        100,
			GraphProcMBps:   200, // out-of-core, but purely sequential shard sweeps
			NativeIteration: true,
			SingleMachine:   true,
			CodegenTaxPct:   10, NaiveFactor: 1.5,
		},
	}
}

// Metis returns the Metis single-machine in-memory MapReduce engine.
func Metis() *Engine {
	return &Engine{
		name: "metis", paradigm: ParadigmMapReduce, dialect: dialectMetis,
		prof: Profile{
			PerJobOverheadS: 0.7,
			PullMBps:        130, PushMBps: 120, // local FS, no replication
			LoadMBps: 0, ProcMBps: 200, // multicore in-memory
			ShuffleFactor: 1.8, // single-box partition/sort/merge phases
			SingleMachine: true,
			MemCapGB:      13, ThrashFactor: 5,
			CodegenTaxPct: 8, NaiveFactor: 1.6,
		},
	}
}

// SerialC returns the single-threaded compiled-C engine.
func SerialC() *Engine {
	return &Engine{
		name: "serial", paradigm: ParadigmGeneral, dialect: dialectC,
		prof: Profile{
			PerJobOverheadS: 0.2,
			PullMBps:        120, PushMBps: 120, // one disk, no replication
			LoadMBps: 0, ProcMBps: 180, // tight compiled code, but one thread
			SingleMachine:  true,
			GraphMemFactor: 3, // compact C structs, but strictly in-memory
			MemCapGB:       13, ThrashFactor: 5,
			NativeIteration: true,
			CodegenTaxPct:   5, NaiveFactor: 1.4,
		},
	}
}

// StandardEngines returns the seven engines Musketeer generates code for,
// in a stable order.
func StandardEngines() []*Engine {
	return []*Engine{Hadoop(), Spark(), Naiad(), PowerGraph(), GraphChi(), Metis(), SerialC()}
}

// NewEngine builds a custom back-end from a paradigm and profile — the
// extensibility path of paper §3: supporting a new execution engine means
// supplying its mergeability rules (via the paradigm), its performance
// profile, and code templates (the dialect is chosen by paradigm; C++-like
// for vertex-centric, MapReduce classes for MR, functional dataflow
// otherwise).
func NewEngine(name string, p Paradigm, prof Profile) *Engine {
	d := dialectSpark
	switch p {
	case ParadigmVertexCentric:
		d = dialectGraphChi
	case ParadigmMapReduce:
		d = dialectHadoop
	}
	return &Engine{name: name, paradigm: p, prof: prof, dialect: d}
}

// XStream models the X-Stream edge-centric single-machine system from the
// paper's Table 3 (not one of the seven engines the prototype supported —
// it exists here as the worked example of adding an eighth back-end).
// Edge-centric streaming trades random vertex access for sequential edge
// sweeps: no shard-construction LOAD phase (unlike GraphChi), a competitive
// streaming rate, and no in-memory capacity cliff.
func XStream() *Engine {
	return NewEngine("xstream", ParadigmVertexCentric, Profile{
		PerJobOverheadS: 2,
		PullMBps:        95, PushMBps: 95,
		LoadMBps: 0, // streams partitions directly, no sharding pass
		ProcMBps: 90, GraphProcMBps: 170,
		SingleMachine:   true,
		NativeIteration: true,
		CodegenTaxPct:   10, NaiveFactor: 1.5,
	})
}
