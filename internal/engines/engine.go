// Package engines implements Musketeer's seven back-end execution engines:
// Hadoop MapReduce, Spark, Naiad, PowerGraph, GraphChi, Metis and serial C
// (paper Table 3, bold rows).
//
// Every engine genuinely executes the jobs generated for it — operator
// semantics come from internal/exec, and data moves through the simulated
// DFS at job boundaries — so cross-engine result equality is a tested
// invariant. What distinguishes engines is (i) which IR fragments they can
// run as a single job (paradigm restrictions and mergeability, §4.3.2),
// (ii) the physical plans and textual code generated for them (§4.3), and
// (iii) a calibrated performance profile that converts the logical data
// volumes a job moves into simulated makespan (§5.2, Table 1). The profile
// constants and their provenance live in profiles.go.
package engines

import (
	"fmt"
	"math"

	"musketeer/internal/cluster"
	"musketeer/internal/ir"
)

// Paradigm classifies an engine's computation model.
type Paradigm uint8

const (
	// ParadigmMapReduce engines run map*-shuffle-reduce* jobs: at most one
	// by-key shuffle per job (Hadoop, Metis).
	ParadigmMapReduce Paradigm = iota
	// ParadigmGeneral engines execute arbitrary operator DAGs, including
	// native iteration, in a single job (Spark, Naiad, serial C).
	ParadigmGeneral
	// ParadigmVertexCentric engines only run detected graph idioms
	// (PowerGraph, GraphChi).
	ParadigmVertexCentric
)

// String names the paradigm.
func (p Paradigm) String() string {
	switch p {
	case ParadigmMapReduce:
		return "mapreduce"
	case ParadigmGeneral:
		return "general"
	default:
		return "vertex-centric"
	}
}

// Profile is an engine's calibrated performance model. Rates are per node
// in MB/s of *logical* data; see profiles.go for the calibration story.
type Profile struct {
	// PerJobOverheadS is the fixed job submission/startup/teardown cost.
	PerJobOverheadS float64
	// PullMBps / PushMBps are per-node DFS streaming rates (Table 1 PULL
	// and PUSH).
	PullMBps, PushMBps float64
	// LoadMBps is the per-node rate of the engine's ingest transformation
	// (Spark's RDD materialization, PowerGraph's partitioning, GraphChi's
	// shard construction); zero means no load phase (Table 1 LOAD).
	LoadMBps float64
	// ProcMBps is the per-node operator processing rate on in-memory data
	// (Table 1 PROCESS).
	ProcMBps float64
	// GraphProcMBps, when non-zero, replaces ProcMBps for detected graph
	// idioms (vertex-centric engines move edges, not tuples).
	GraphProcMBps float64
	// SingleMachine engines use exactly one node regardless of cluster.
	SingleMachine bool
	// MaxUsefulNodes caps scaling (PowerGraph sees no benefit beyond 16
	// nodes in the paper); zero means unlimited.
	MaxUsefulNodes int
	// NativeIteration engines run a WHILE inside one job; others re-submit
	// body jobs per iteration.
	NativeIteration bool
	// NonAssocGroupBy models Lindi's high-level GROUP BY, which collects
	// all data on a single machine before applying the operator
	// (paper §6.2); aggregation then proceeds at single-node rate.
	NonAssocGroupBy bool
	// ShuffleMBps is the per-node effective network shuffle rate for
	// by-key repartitioning (serialization + transfer + spill); zero means
	// shuffles are free (single-machine engines, and vertex-centric
	// engines whose messaging is already in GraphProcMBps).
	ShuffleMBps float64
	// ShuffleFactor multiplies the PROCESS volume of shuffle operators:
	// MapReduce-paradigm engines pay extra passes for partition/sort/
	// merge on joins and aggregations. Zero means 1 (no surcharge).
	ShuffleFactor float64
	// LoadOutputs extends the LOAD phase to generated data: Spark
	// materializes operator results into in-memory RDDs, so large
	// intermediates cost ingest-side work too.
	LoadOutputs bool
	// CrossJoinBlowup multiplies a CROSS JOIN output's contribution to the
	// memory working set: Spark's cartesian() creates a task per partition
	// pair and buffers both sides, which is what OOMs the paper's k-means
	// (§6.7). Zero means 1.
	CrossJoinBlowup float64
	// GraphMemFactor scales a graph's edge-list size to the engine's
	// in-memory representation (PowerGraph's vertex/edge structures are
	// several times the on-disk edge list); used with MemCapGB to decide
	// whether the graph fits. Zero means 1.
	GraphMemFactor float64
	// MemCapGB is the in-memory working-set capacity (per machine for
	// single-machine engines, per node × nodes for distributed in-memory
	// engines). Zero means streaming/out-of-core: no cap.
	MemCapGB float64
	// ThrashFactor multiplies processing time when the working set
	// exceeds MemCapGB.
	ThrashFactor float64
	// CodegenTaxPct is the residual overhead of Musketeer-generated code
	// over a hand-optimized implementation for this engine (paper §6.4:
	// 5–30%, near zero for Naiad).
	CodegenTaxPct float64
	// NaiveFactor multiplies processing time for naive (unfused,
	// no shared scans, no type inference) generated code.
	NaiveFactor float64
	// CheckpointS is the engine's default periodic-checkpoint interval in
	// simulated seconds, for engines whose fault tolerance rolls back to a
	// global checkpoint (Table 3: Naiad, PowerGraph). Zero means the chaos
	// plan's (or the global 60s) default.
	CheckpointS float64
}

// Engine is one back-end execution engine instance.
type Engine struct {
	name     string
	paradigm Paradigm
	prof     Profile
	dialect  dialect
}

// Name returns the engine's registry name.
func (e *Engine) Name() string { return e.name }

// Paradigm returns the engine's computation model.
func (e *Engine) Paradigm() Paradigm { return e.paradigm }

// Profile returns the calibrated performance model.
func (e *Engine) Profile() Profile { return e.prof }

// EffectiveNodes returns how many cluster nodes the engine actually uses.
func (e *Engine) EffectiveNodes(c *cluster.Cluster) int {
	n := c.Nodes
	if e.prof.SingleMachine {
		return 1
	}
	if e.prof.MaxUsefulNodes > 0 && n > e.prof.MaxUsefulNodes {
		return e.prof.MaxUsefulNodes
	}
	return n
}

// RateNodes returns the node count used for rate scaling: distributed
// engines scale sublinearly (stragglers, task scheduling, coordination), so
// aggregate throughput grows as n^0.75 — which is what makes per-job
// overheads matter less and crossover points land where the paper's do.
func (e *Engine) RateNodes(c *cluster.Cluster) float64 {
	n := e.EffectiveNodes(c)
	if n <= 1 {
		return 1
	}
	return math.Pow(float64(n), 0.75)
}

// ValidFragment reports whether the fragment can execute as a single job on
// this engine. This encodes the per-back-end operator mergeability rules of
// paper §4.3.2:
//
//   - Vertex-centric engines accept exactly one operator: a WHILE whose
//     body matches the graph idiom.
//   - MapReduce engines accept either a WHILE on its own (the body is then
//     sub-partitioned and driven iteration by iteration), or a WHILE-free
//     fragment with at most one shuffle operator.
//   - General dataflow engines accept any fragment.
func (e *Engine) ValidFragment(f *ir.Fragment) error {
	compute := f.ComputeOps()
	if len(compute) == 0 {
		return fmt.Errorf("%s: empty fragment", e.name)
	}
	switch e.paradigm {
	case ParadigmVertexCentric:
		if len(compute) != 1 {
			return fmt.Errorf("%s: vertex-centric back-end cannot merge %d operators", e.name, len(compute))
		}
		w := f.While()
		if w == nil {
			return fmt.Errorf("%s: only graph idioms are expressible", e.name)
		}
		if ir.DetectGraphIdiom(w) == nil {
			return fmt.Errorf("%s: WHILE %s does not match the GAS idiom", e.name, w.Out)
		}
		return nil
	case ParadigmMapReduce:
		if w := f.While(); w != nil {
			if len(compute) != 1 {
				return fmt.Errorf("%s: WHILE cannot merge with other operators", e.name)
			}
			return nil
		}
		// One shuffle per job — except the classic reduce-side pattern:
		// a JOIN immediately aggregated on the same key shares the single
		// map-shuffle-reduce round (as Pig/Hive plan it).
		var shuffles []*ir.Op
		for _, op := range compute {
			if ir.IsShuffleOp(op.Type) {
				shuffles = append(shuffles, op)
			}
		}
		switch len(shuffles) {
		case 0, 1:
			return nil
		case 2:
			a, b := shuffles[0], shuffles[1]
			if a.Type == ir.OpJoin && b.Type == ir.OpAgg && shuffleKeyOf(a) == shuffleKeyOf(b) {
				return nil
			}
			return fmt.Errorf("%s: shuffles %s and %s need separate jobs", e.name, a.Type, b.Type)
		default:
			return fmt.Errorf("%s: %d shuffle operators in one job", e.name, len(shuffles))
		}
	default:
		return nil
	}
}

// shuffleKeyOf renders the key columns an operator shuffles on; operators
// that repartition on the whole row get a sentinel key.
func shuffleKeyOf(op *ir.Op) string {
	switch op.Type {
	case ir.OpJoin:
		return "k:" + joinKey(op.Params.LeftCols)
	case ir.OpAgg:
		return "k:" + joinKey(op.Params.GroupBy)
	default: // DISTINCT, INTERSECT, DIFFERENCE, CROSS_JOIN
		return fmt.Sprintf("row:%d", op.ID)
	}
}

func joinKey(cols []string) string {
	out := ""
	for _, c := range cols {
		out += c + ","
	}
	return out
}

// CanMerge reports whether operators a and b may share a job on this
// engine. It is the pairwise form of the mergeability rules used by the
// partitioner's cost function to prune infeasible partitions cheaply.
func (e *Engine) CanMerge(a, b *ir.Op) bool {
	switch e.paradigm {
	case ParadigmVertexCentric:
		return false // single-operator jobs only
	case ParadigmMapReduce:
		if a.Type == ir.OpWhile || b.Type == ir.OpWhile {
			return false
		}
		if ir.IsShuffleOp(a.Type) && ir.IsShuffleOp(b.Type) {
			return shuffleKeyOf(a) == shuffleKeyOf(b)
		}
		return true
	default:
		return true
	}
}

// Registry returns the standard seven engines plus the Lindi-on-Naiad
// native baseline, keyed by name.
func Registry() map[string]*Engine {
	all := map[string]*Engine{}
	for _, e := range StandardEngines() {
		all[e.Name()] = e
	}
	all["naiad-lindi"] = NaiadLindi()
	return all
}
