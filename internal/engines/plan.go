package engines

import (
	"fmt"

	"musketeer/internal/ir"
)

// PlanMode selects the code-generation quality (paper §4.3, §6.4).
type PlanMode uint8

const (
	// ModeOptimized is Musketeer's full code generation: operator merging,
	// shared data scans, look-ahead type inference.
	ModeOptimized PlanMode = iota
	// ModeNaive instantiates one template per operator with no fusion —
	// every operator performs its own pass over the data.
	ModeNaive
	// ModeHand represents the hand-optimized, non-portable baseline an
	// expert would write: the optimized plan with zero codegen tax.
	ModeHand
)

// String names the mode.
func (m PlanMode) String() string {
	switch m {
	case ModeNaive:
		return "naive"
	case ModeHand:
		return "hand-optimized"
	default:
		return "optimized"
	}
}

// Stage is one data pass of a physical plan: a pipeline of fused operators
// containing at most one shuffle.
type Stage struct {
	Ops     []*ir.Op
	Shuffle bool
}

// Plan is an executable physical plan for one back-end job, plus the
// generated source text for the engine's language.
type Plan struct {
	Engine *Engine
	Frag   *ir.Fragment
	Mode   PlanMode
	// Stages lower the fragment (or the WHILE body, when Iterative) into
	// data passes; the cost model charges one scan per stage and the
	// intrinsic PROCESS cost per operator.
	Stages []Stage
	// Iterative marks a natively iterated WHILE job.
	Iterative bool
	// While is the fragment's WHILE operator when Iterative.
	While *ir.Op
	// Source is the generated code in the engine's language.
	Source string
}

// NumStages returns the number of data passes the plan performs.
func (p *Plan) NumStages() int { return len(p.Stages) }

// Plan lowers a fragment into a physical plan for this engine.
// The fragment must be valid for the engine, except that WHILE fragments
// are also accepted by non-native-iteration engines so the iteration driver
// can cost and render per-iteration body plans.
func (e *Engine) Plan(f *ir.Fragment, mode PlanMode) (*Plan, error) {
	p := &Plan{Engine: e, Frag: f, Mode: mode}
	compute := f.ComputeOps()
	if w := f.While(); w != nil {
		if !e.prof.NativeIteration && len(compute) != 1 {
			// Driver-looped engines run the WHILE as its own "job" (the
			// runner expands it); merging it with batch operators is a
			// partitioning bug.
			return nil, fmt.Errorf("%s: WHILE must be planned alone", e.name)
		}
		p.Iterative = e.prof.NativeIteration
		p.While = w
	}
	// Lower to stages, expanding WHILE bodies inline (general dataflow
	// engines run the loop inside the job).
	var ops []*ir.Op
	for _, op := range compute {
		if op.Type == ir.OpWhile {
			ops = append(ops, bodyComputeOps(op)...)
			continue
		}
		ops = append(ops, op)
	}
	p.Stages = lowerOps(ops, mode)
	p.Source = renderSource(e.dialect, p)
	return p, nil
}

func bodyComputeOps(w *ir.Op) []*ir.Op {
	var ops []*ir.Op
	if w.Params.Body == nil {
		return ops
	}
	order, err := w.Params.Body.TopoSort()
	if err != nil {
		order = w.Params.Body.Ops
	}
	for _, op := range order {
		if op.Type != ir.OpInput {
			ops = append(ops, op)
		}
	}
	return ops
}

// lowerOps fuses a topologically ordered operator pipeline into stages.
//
// Optimized/hand mode implements the paper's shared scans (§4.3.3) and
// look-ahead type inference (§4.3.4): consecutive pipelineable operators
// share one pass, and a shuffle operator absorbs both its map-side
// preparation and its reduce-side successors. Naive mode gives every
// operator its own stage — every operator re-scans its input, as
// concatenated per-operator templates would.
func lowerOps(ops []*ir.Op, mode PlanMode) []Stage {
	if mode == ModeNaive {
		stages := make([]Stage, len(ops))
		for i, op := range ops {
			stages[i] = Stage{Ops: []*ir.Op{op}, Shuffle: ir.IsShuffleOp(op.Type)}
		}
		return stages
	}
	var stages []Stage
	cur := Stage{}
	flush := func() {
		if len(cur.Ops) > 0 {
			stages = append(stages, cur)
			cur = Stage{}
		}
	}
	for _, op := range ops {
		if ir.IsShuffleOp(op.Type) {
			if cur.Shuffle {
				// A second shuffle cannot share the pass.
				flush()
			}
			cur.Ops = append(cur.Ops, op)
			cur.Shuffle = true
			continue
		}
		cur.Ops = append(cur.Ops, op)
	}
	flush()
	return stages
}
