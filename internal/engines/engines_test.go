package engines

import (
	"strings"
	"testing"

	"musketeer/internal/cluster"
	"musketeer/internal/dfs"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// maxPropertyPrice builds the paper's Listing 1 workflow DAG.
func maxPropertyPrice() *ir.DAG {
	d := ir.NewDAG()
	props := d.AddInput("properties", "in/properties", relation.NewSchema("id:int", "street:string", "town:string"))
	prices := d.AddInput("prices", "in/prices", relation.NewSchema("id:int", "price:float"))
	locs := d.Add(ir.OpProject, "locs", ir.Params{Columns: []string{"id", "street", "town"}}, props)
	idPrice := d.Add(ir.OpJoin, "id_price", ir.Params{LeftCols: []string{"id"}, RightCols: []string{"id"}}, locs, prices)
	d.Add(ir.OpAgg, "street_price", ir.Params{
		GroupBy: []string{"street", "town"},
		Aggs:    []ir.AggSpec{{Func: ir.AggMax, Col: "price", As: "max_price"}},
	}, idPrice)
	return d
}

func wholeFragment(t *testing.T, d *ir.DAG) *ir.Fragment {
	t.Helper()
	f, err := ir.NewFragment(d, d.Ops)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func pageRankWhileDAG(t *testing.T, iters int) *ir.DAG {
	t.Helper()
	d := ir.NewDAG()
	edges := d.AddInput("edges", "in/edges", relation.NewSchema("src:int", "dst:int", "degree:int"))
	ranks := d.AddInput("ranks", "in/ranks", relation.NewSchema("vertex:int", "rank:float"))
	body := ir.NewDAG()
	bRanks := body.AddInput("ranks", "", relation.NewSchema("vertex:int", "rank:float"))
	bEdges := body.AddInput("edges", "", relation.NewSchema("src:int", "dst:int", "degree:int"))
	j := body.Add(ir.OpJoin, "sent", ir.Params{LeftCols: []string{"vertex"}, RightCols: []string{"src"}}, bRanks, bEdges)
	sh := body.Add(ir.OpArith, "shared", ir.Params{Dst: "rank", ALeft: ir.ColRef("rank"), ARght: ir.ColRef("degree"), AOp: ir.ArithDiv}, j)
	g := body.Add(ir.OpAgg, "gathered", ir.Params{GroupBy: []string{"dst"}, Aggs: []ir.AggSpec{{Func: ir.AggSum, Col: "rank", As: "rank"}}}, sh)
	m := body.Add(ir.OpArith, "damped", ir.Params{Dst: "rank", ALeft: ir.ColRef("rank"), ARght: ir.LitOp(relation.Float(0.85)), AOp: ir.ArithMul}, g)
	ap := body.Add(ir.OpArith, "applied", ir.Params{Dst: "rank", ALeft: ir.ColRef("rank"), ARght: ir.LitOp(relation.Float(0.15)), AOp: ir.ArithAdd}, m)
	body.Add(ir.OpProject, "new_ranks", ir.Params{Columns: []string{"dst", "rank"}, As: []string{"vertex", "rank"}}, ap)
	d.Add(ir.OpWhile, "final_ranks", ir.Params{
		Body: body, MaxIter: iters,
		Carried: map[string]string{"ranks": "new_ranks"},
	}, ranks, edges)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRegistryHasAllEngines(t *testing.T) {
	reg := Registry()
	for _, name := range []string{"hadoop", "spark", "naiad", "powergraph", "graphchi", "metis", "serial", "naiad-lindi"} {
		if reg[name] == nil {
			t.Errorf("missing engine %q", name)
		}
	}
	if len(StandardEngines()) != 7 {
		t.Errorf("standard engines = %d, want 7", len(StandardEngines()))
	}
}

func TestValidFragmentRules(t *testing.T) {
	d := maxPropertyPrice()
	whole := wholeFragment(t, d)

	// General engines accept anything.
	for _, e := range []*Engine{Spark(), Naiad(), SerialC()} {
		if err := e.ValidFragment(whole); err != nil {
			t.Errorf("%s rejected relational fragment: %v", e.Name(), err)
		}
	}
	// MapReduce engines reject two shuffles (JOIN + AGG) in one job.
	for _, e := range []*Engine{Hadoop(), Metis()} {
		if err := e.ValidFragment(whole); err == nil {
			t.Errorf("%s accepted two-shuffle fragment", e.Name())
		}
	}
	// One shuffle is fine for MapReduce.
	oneShuffle, err := ir.NewFragment(d, []*ir.Op{d.ByOut("locs"), d.ByOut("id_price")})
	if err != nil {
		t.Fatal(err)
	}
	if err := Hadoop().ValidFragment(oneShuffle); err != nil {
		t.Errorf("hadoop rejected 1-shuffle fragment: %v", err)
	}
	// Vertex-centric engines reject relational fragments entirely.
	for _, e := range []*Engine{PowerGraph(), GraphChi()} {
		if err := e.ValidFragment(whole); err == nil {
			t.Errorf("%s accepted relational fragment", e.Name())
		}
		if err := e.ValidFragment(oneShuffle); err == nil {
			t.Errorf("%s accepted non-graph fragment", e.Name())
		}
	}
}

func TestValidFragmentGraphIdiom(t *testing.T) {
	d := pageRankWhileDAG(t, 5)
	w := d.ByOut("final_ranks")
	frag, err := ir.NewFragment(d, []*ir.Op{w})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Engine{PowerGraph(), GraphChi(), Spark(), Naiad(), Hadoop(), Metis(), SerialC()} {
		if err := e.ValidFragment(frag); err != nil {
			t.Errorf("%s rejected PageRank WHILE: %v", e.Name(), err)
		}
	}
	if ir.DetectGraphIdiom(w) == nil {
		t.Fatal("graph idiom not detected in PageRank body")
	}
}

func TestCanMergePairRules(t *testing.T) {
	d := maxPropertyPrice()
	j, a, p := d.ByOut("id_price"), d.ByOut("street_price"), d.ByOut("locs")
	if Hadoop().CanMerge(j, a) {
		t.Error("hadoop must not merge two shuffles")
	}
	if !Hadoop().CanMerge(p, j) {
		t.Error("hadoop should merge project+join")
	}
	if !Spark().CanMerge(j, a) {
		t.Error("spark should merge anything")
	}
	if PowerGraph().CanMerge(p, j) {
		t.Error("vertex-centric engines never merge")
	}
}

func TestEffectiveNodes(t *testing.T) {
	c := cluster.EC2(100)
	if got := Naiad().EffectiveNodes(c); got != 100 {
		t.Errorf("naiad nodes = %d", got)
	}
	if got := PowerGraph().EffectiveNodes(c); got != 16 {
		t.Errorf("powergraph nodes = %d, want 16 cap", got)
	}
	if got := Metis().EffectiveNodes(c); got != 1 {
		t.Errorf("metis nodes = %d, want 1", got)
	}
	if got := GraphChi().EffectiveNodes(c); got != 1 {
		t.Errorf("graphchi nodes = %d, want 1", got)
	}
}

func TestPlanStageFusion(t *testing.T) {
	d := maxPropertyPrice()
	whole := wholeFragment(t, d)
	opt, err := Spark().Plan(whole, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Spark().Plan(whole, ModeNaive)
	if err != nil {
		t.Fatal(err)
	}
	// Optimized: project fuses into join's stage; agg needs a second
	// shuffle stage → 2 stages. Naive: 3 stages (one per op).
	if opt.NumStages() != 2 {
		t.Errorf("optimized stages = %d, want 2", opt.NumStages())
	}
	if naive.NumStages() != 3 {
		t.Errorf("naive stages = %d, want 3", naive.NumStages())
	}
}

func TestSparkSourceSharedScan(t *testing.T) {
	d := maxPropertyPrice()
	whole := wholeFragment(t, d)
	opt, _ := Spark().Plan(whole, ModeOptimized)
	if !strings.Contains(opt.Source, "fused: shared scan") {
		t.Errorf("optimized spark source missing fused marker:\n%s", opt.Source)
	}
	if !strings.Contains(opt.Source, "reduceByKey") {
		t.Errorf("spark source missing reduceByKey:\n%s", opt.Source)
	}
	naive, _ := Spark().Plan(whole, ModeNaive)
	if strings.Count(naive.Source, ".map(") <= strings.Count(opt.Source, ".map(") {
		t.Errorf("naive source should contain more map passes\nnaive:\n%s\nopt:\n%s", naive.Source, opt.Source)
	}
}

func TestHadoopSourceHasMapperReducer(t *testing.T) {
	d := maxPropertyPrice()
	frag, err := ir.NewFragment(d, []*ir.Op{d.ByOut("locs"), d.ByOut("id_price")})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Hadoop().Plan(frag, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Mapper", "Reducer", "shuffle", "join"} {
		if !strings.Contains(p.Source, want) {
			t.Errorf("hadoop source missing %q:\n%s", want, p.Source)
		}
	}
}

func TestGASSource(t *testing.T) {
	d := pageRankWhileDAG(t, 5)
	frag, err := ir.NewFragment(d, []*ir.Op{d.ByOut("final_ranks")})
	if err != nil {
		t.Fatal(err)
	}
	p, err := PowerGraph().Plan(frag, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gather", "apply", "scatter", "vertex_program"} {
		if !strings.Contains(p.Source, want) {
			t.Errorf("GAS source missing %q:\n%s", want, p.Source)
		}
	}
	if !p.Iterative {
		t.Error("GAS plan should be natively iterative")
	}
}

func TestCSource(t *testing.T) {
	d := maxPropertyPrice()
	p, err := SerialC().Plan(wholeFragment(t, d), ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"int main", "load_tsv", "write_tsv"} {
		if !strings.Contains(p.Source, want) {
			t.Errorf("C source missing %q:\n%s", want, p.Source)
		}
	}
}

func seedDFS(t *testing.T, scale int64) *dfs.DFS {
	t.Helper()
	d := dfs.New()
	props := relation.New("properties", relation.NewSchema("id:int", "street:string", "town:string"))
	streets := []string{"mill rd", "high st", "king st"}
	for i := int64(0); i < 30; i++ {
		props.MustAppend(relation.Row{relation.Int(i), relation.Str(streets[i%3]), relation.Str("cam")})
	}
	props.LogicalBytes = props.PhysicalBytes() * scale
	prices := relation.New("prices", relation.NewSchema("id:int", "price:float"))
	for i := int64(0); i < 30; i++ {
		prices.MustAppend(relation.Row{relation.Int(i), relation.Float(float64(100 + i))})
	}
	prices.LogicalBytes = prices.PhysicalBytes() * scale
	if err := d.WriteRelation("in/properties", props); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRelation("in/prices", prices); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunProducesResultsAndCost(t *testing.T) {
	dag := maxPropertyPrice()
	frag := wholeFragment(t, dag)
	fs := seedDFS(t, 1000)
	ctx := RunContext{DFS: fs, Cluster: cluster.Local(7)}
	p, err := Naiad().Plan(frag, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
	if res.Breakdown.Overhead != cluster.Seconds(Naiad().Profile().PerJobOverheadS) {
		t.Errorf("overhead = %v", res.Breakdown.Overhead)
	}
	if res.Breakdown.Pull <= 0 || res.Breakdown.Push <= 0 || res.Breakdown.Proc <= 0 {
		t.Errorf("breakdown has zero phases: %+v", res.Breakdown)
	}
	out, err := fs.ReadRelation("street_price")
	if err != nil {
		t.Fatalf("output not written: %v", err)
	}
	if out.NumRows() != 3 {
		t.Errorf("street_price rows = %d, want 3", out.NumRows())
	}
}

func TestCrossEngineResultEquality(t *testing.T) {
	dag := maxPropertyPrice()
	// Run the workflow on every general engine as one job and compare.
	var fingerprints []string
	var names []string
	for _, e := range []*Engine{Spark(), Naiad(), SerialC(), NaiadLindi()} {
		fs := seedDFS(t, 1)
		frag := wholeFragment(t, dag)
		p, err := e.Plan(frag, ModeOptimized)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(RunContext{DFS: fs, Cluster: cluster.Local(7)}, p); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		out, err := fs.ReadRelation("street_price")
		if err != nil {
			t.Fatal(err)
		}
		fingerprints = append(fingerprints, out.Fingerprint())
		names = append(names, e.Name())
	}
	for i := 1; i < len(fingerprints); i++ {
		if fingerprints[i] != fingerprints[0] {
			t.Errorf("%s result differs from %s", names[i], names[0])
		}
	}
}

func TestSingleMachineSlowerThanDistributedAtScale(t *testing.T) {
	dag := maxPropertyPrice()
	c := cluster.Local(7)
	run := func(e *Engine, scale int64) cluster.Seconds {
		fs := seedDFS(t, scale)
		p, err := e.Plan(wholeFragment(t, dag), ModeOptimized)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(RunContext{DFS: fs, Cluster: c}, p)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	// At large logical scale the distributed engine wins; tiny scale the
	// low-overhead single-machine engine wins (paper §2.1).
	big := int64(20_000_000) // tens of GB logical
	if m, n := run(Metis(), big), run(Naiad(), big); m <= n {
		t.Errorf("at scale, metis (%v) should be slower than naiad (%v)", m, n)
	}
	small := int64(100)
	if m, n := run(Metis(), small), run(Naiad(), small); m >= n {
		t.Errorf("at small scale, metis (%v) should beat naiad (%v)", m, n)
	}
}

func TestMemCapThrashing(t *testing.T) {
	dag := maxPropertyPrice()
	// Logical inputs far beyond Metis's 13 GB cap.
	fs := seedDFS(t, 50_000_000)
	p, err := Metis().Plan(wholeFragment(t, dag), ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	// The whole fragment has 2 shuffles — invalid for Metis as one job,
	// but Plan/Run (used directly here) still executes it; validity is
	// the partitioner's concern. Use a valid sub-fragment instead.
	frag, err := ir.NewFragment(dag, []*ir.Op{dag.ByOut("locs"), dag.ByOut("id_price")})
	if err != nil {
		t.Fatal(err)
	}
	p, err = Metis().Plan(frag, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunContext{DFS: fs, Cluster: cluster.Local(7)}, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM {
		t.Error("expected OOM/thrashing beyond memory capacity")
	}
}

func TestNonAssocGroupByPenalty(t *testing.T) {
	dag := maxPropertyPrice()
	frag := wholeFragment(t, dag)
	c := cluster.EC2(100)
	scale := int64(1_000_000)

	fsA := seedDFS(t, scale)
	pa, _ := Naiad().Plan(frag, ModeHand)
	ra, err := Run(RunContext{DFS: fsA, Cluster: c}, pa)
	if err != nil {
		t.Fatal(err)
	}
	fsB := seedDFS(t, scale)
	pb, _ := NaiadLindi().Plan(frag, ModeHand)
	rb, err := Run(RunContext{DFS: fsB, Cluster: c}, pb)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Makespan <= ra.Makespan {
		t.Errorf("lindi (%v) should be slower than musketeer-naiad (%v)", rb.Makespan, ra.Makespan)
	}
}

func TestModeOrdering(t *testing.T) {
	dag := maxPropertyPrice()
	frag := wholeFragment(t, dag)
	c := cluster.Local(7)
	times := map[PlanMode]cluster.Seconds{}
	for _, mode := range []PlanMode{ModeHand, ModeOptimized, ModeNaive} {
		fs := seedDFS(t, 1_000_000)
		p, err := Spark().Plan(frag, mode)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(RunContext{DFS: fs, Cluster: c}, p)
		if err != nil {
			t.Fatal(err)
		}
		times[mode] = res.Makespan
	}
	if !(times[ModeHand] < times[ModeOptimized] && times[ModeOptimized] < times[ModeNaive]) {
		t.Errorf("mode ordering violated: hand=%v opt=%v naive=%v",
			times[ModeHand], times[ModeOptimized], times[ModeNaive])
	}
	// Paper §6.4: generated code within 5-30% of hand-optimized.
	overhead := (float64(times[ModeOptimized]) - float64(times[ModeHand])) / float64(times[ModeHand])
	if overhead > 0.30 {
		t.Errorf("generated-code overhead %.0f%% exceeds 30%%", overhead*100)
	}
}

func TestNativeIterationRun(t *testing.T) {
	d := pageRankWhileDAG(t, 5)
	frag, err := ir.NewFragment(d, []*ir.Op{d.ByOut("final_ranks")})
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.New()
	edges := relation.New("edges", relation.NewSchema("src:int", "dst:int", "degree:int"))
	edges.MustAppend(relation.Row{relation.Int(1), relation.Int(2), relation.Int(1)})
	edges.MustAppend(relation.Row{relation.Int(2), relation.Int(1), relation.Int(1)})
	ranks := relation.New("ranks", relation.NewSchema("vertex:int", "rank:float"))
	ranks.MustAppend(relation.Row{relation.Int(1), relation.Float(1)})
	ranks.MustAppend(relation.Row{relation.Int(2), relation.Float(1)})
	if err := fs.WriteRelation("in/edges", edges); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteRelation("in/ranks", ranks); err != nil {
		t.Fatal(err)
	}
	p, err := Naiad().Plan(frag, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunContext{DFS: fs, Cluster: cluster.EC2(16)}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 5 {
		t.Errorf("iterations = %d, want 5", res.Iterations)
	}
	out, err := fs.ReadRelation("final_ranks")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Errorf("final ranks = %v", out.Rows)
	}
	// Symmetric 2-cycle: both ranks converge to 1.
	for _, r := range out.Rows {
		if diff := r[1].F - 1.0; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("rank %v, want 1.0", r)
		}
	}
}

func TestWhileOnNonNativeEngineRejectedByRun(t *testing.T) {
	d := pageRankWhileDAG(t, 2)
	frag, err := ir.NewFragment(d, []*ir.Op{d.ByOut("final_ranks")})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Hadoop().Plan(frag, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if p.Iterative {
		t.Error("hadoop plan must not be natively iterative")
	}
	if _, err := Run(RunContext{DFS: dfs.New(), Cluster: cluster.EC2(16)}, p); err == nil {
		t.Error("Run accepted non-native WHILE plan")
	}
}

func TestEstimateCostMonotonicInVolume(t *testing.T) {
	c := cluster.EC2(16)
	e := Hadoop()
	small := e.EstimateCost(c, Volumes{Pull: 1e9, Proc: 1e9, Push: 1e8})
	large := e.EstimateCost(c, Volumes{Pull: 10e9, Proc: 10e9, Push: 1e9})
	if large <= small {
		t.Errorf("cost not monotone: %v vs %v", small, large)
	}
	withJobs := e.EstimateCost(c, Volumes{Pull: 1e9, Proc: 1e9, Push: 1e8, ExtraJobs: 3})
	if withJobs <= small {
		t.Error("extra jobs should add overhead")
	}
}

func TestTypedCodegenOnlyWhenOptimized(t *testing.T) {
	d := maxPropertyPrice()
	whole, err := ir.NewFragment(d, d.Ops)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Spark().Plan(whole, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	// Look-ahead type inference (§4.3.4): optimized code carries the
	// inferred tuple types of each relation.
	for _, want := range []string{"max_price: Double", "street: String", "id: Long"} {
		if !strings.Contains(opt.Source, want) {
			t.Errorf("optimized source missing inferred type %q:\n%s", want, opt.Source)
		}
	}
	naive, err := Spark().Plan(whole, ModeNaive)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(naive.Source, ": Double") {
		t.Errorf("naive source should be untyped:\n%s", naive.Source)
	}
}

func TestProfileGetters(t *testing.T) {
	if got := Hadoop().RateNodes(cluster.EC2(16)); got <= 1 || got >= 16 {
		t.Errorf("RateNodes(16) = %v, want sublinear in (1,16)", got)
	}
	if got := Metis().RateNodes(cluster.EC2(100)); got != 1 {
		t.Errorf("single-machine RateNodes = %v", got)
	}
	if Hadoop().ShuffleSurcharge() <= 1 {
		t.Error("hadoop should surcharge shuffles")
	}
	if Naiad().ShuffleSurcharge() != 1 {
		t.Error("naiad has no shuffle surcharge")
	}
	if Spark().CrossBlowup() <= 1 {
		t.Error("spark cartesian blowup missing")
	}
	if Hadoop().CrossBlowup() != 1 {
		t.Error("hadoop should have no cartesian blowup")
	}
	langs := map[string]string{
		"hadoop": "Java", "spark": "Scala", "naiad": "C#",
		"powergraph": "C++", "graphchi": "C++", "metis": "C++", "serial": "C",
	}
	for name, want := range langs {
		if got := Registry()[name].Language(); got != want {
			t.Errorf("%s language = %s, want %s", name, got, want)
		}
	}
}
