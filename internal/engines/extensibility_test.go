package engines

import (
	"strings"
	"testing"

	"musketeer/internal/cluster"
	"musketeer/internal/dfs"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// TestXStreamRunsGraphIdiom demonstrates the paper's §3 extensibility
// claim: a new back-end (X-Stream, Table 3) is added by supplying a
// paradigm and a profile, and immediately executes detected graph idioms
// through the existing code-generation and execution machinery.
func TestXStreamRunsGraphIdiom(t *testing.T) {
	x := XStream()
	if x.Paradigm() != ParadigmVertexCentric {
		t.Fatalf("paradigm = %v", x.Paradigm())
	}

	d := pageRankWhileDAG(t, 3)
	frag, err := ir.NewFragment(d, []*ir.Op{d.ByOut("final_ranks")})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.ValidFragment(frag); err != nil {
		t.Fatalf("xstream rejected the graph idiom: %v", err)
	}
	plan, err := x.Plan(frag, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Source, "vertex_program") {
		t.Errorf("xstream source missing vertex program:\n%s", plan.Source)
	}

	fs := dfs.New()
	edges := relation.New("edges", relation.NewSchema("src:int", "dst:int", "degree:int"))
	edges.MustAppend(relation.Row{relation.Int(1), relation.Int(2), relation.Int(1)})
	edges.MustAppend(relation.Row{relation.Int(2), relation.Int(1), relation.Int(1)})
	ranks := relation.New("ranks", relation.NewSchema("vertex:int", "rank:float"))
	ranks.MustAppend(relation.Row{relation.Int(1), relation.Float(1)})
	ranks.MustAppend(relation.Row{relation.Int(2), relation.Float(1)})
	if err := fs.WriteRelation("in/edges", edges); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteRelation("in/ranks", ranks); err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunContext{DFS: fs, Cluster: cluster.EC2(16)}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	// Single machine regardless of cluster size.
	if got := x.EffectiveNodes(cluster.EC2(100)); got != 1 {
		t.Errorf("effective nodes = %d", got)
	}
	// Cross-engine result equality extends to the new engine.
	out, err := fs.ReadRelation("final_ranks")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range out.Rows {
		if diff := row[1].F - 1.0; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("rank %v, want 1.0", row)
		}
	}
}

// TestXStreamNoLoadPhase: edge-centric streaming has no shard-construction
// LOAD, unlike GraphChi — the profile distinction the system was built
// around (X-Stream paper's premise).
func TestXStreamNoLoadPhase(t *testing.T) {
	if XStream().Profile().LoadMBps != 0 {
		t.Error("xstream should not have a load phase")
	}
	if GraphChi().Profile().LoadMBps == 0 {
		t.Error("graphchi should have a shard-construction load phase")
	}
}

// TestNewEngineDialects checks the extensibility constructor picks code
// templates by paradigm.
func TestNewEngineDialects(t *testing.T) {
	d := maxPropertyPrice()
	frag, err := ir.NewFragment(d, []*ir.Op{d.ByOut("locs")})
	if err != nil {
		t.Fatal(err)
	}
	mr := NewEngine("custom-mr", ParadigmMapReduce, Profile{PerJobOverheadS: 1, PullMBps: 10, PushMBps: 10, ProcMBps: 10})
	p, err := mr.Plan(frag, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Source, "Mapper") {
		t.Errorf("MR dialect missing Mapper:\n%s", p.Source)
	}
	gen := NewEngine("custom-df", ParadigmGeneral, Profile{PerJobOverheadS: 1, PullMBps: 10, PushMBps: 10, ProcMBps: 10})
	p2, err := gen.Plan(frag, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p2.Source, "val ") {
		t.Errorf("dataflow dialect missing val binding:\n%s", p2.Source)
	}
}
