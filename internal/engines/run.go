package engines

import (
	"context"
	"fmt"

	"musketeer/internal/chaos"
	"musketeer/internal/cluster"
	"musketeer/internal/dfs"
	"musketeer/internal/exec"
	"musketeer/internal/ir"
	"musketeer/internal/obs"
	"musketeer/internal/relation"
)

// RunContext is the deployment a job executes on.
type RunContext struct {
	// Ctx carries the execution's cancellation and deadline; Run observes
	// it between phases and operators. Nil means no cancellation
	// (context.Background()).
	Ctx context.Context
	// DFS is the storage view the job reads and writes — for workflow
	// executions, a per-session namespaced view.
	DFS     *dfs.DFS
	Cluster *cluster.Cluster
	// Chaos, when non-nil, is the deterministic fault-injection plan: job
	// crashes, worker failures, stragglers, and DFS read faults are drawn
	// from it, and each engine recovers per its Table 3 mechanism (task
	// retry, lineage, checkpoint, restart).
	Chaos *chaos.Plan
	// Attempt is the scheduler's 0-based retry attempt for this job; the
	// fault model derives per-attempt failure draws from it so a retried
	// job does not deterministically die the same death.
	Attempt int
	// Rec and Span, when set, make Run record pull/process/push phase spans
	// beneath Span (the job attempt's span) on the flight recorder, carrying
	// the cost model's simulated placements. Metrics receives DFS byte
	// counters. All three may be nil — instrumentation then costs nothing.
	Rec     *obs.Recorder
	Span    *obs.Span
	Metrics *obs.Registry
	// Log, when set, receives the attempt's structured fault events
	// (injected crashes, stragglers, DFS read retries, fault recovery) —
	// the execution's run-scoped logger. Nil disables logging at zero cost.
	Log *obs.Logger
	// ShuffleCodec selects the wire format for intra-run shuffles (fragment
	// outputs consumed by other jobs of the same run). The zero value keeps
	// everything TSV; workflow sources, published sinks, and loop
	// temporaries stay TSV regardless.
	ShuffleCodec relation.Codec
	// DisableFusion turns off streaming operator fusion, materializing every
	// intermediate relation (the benchmark baseline and an escape hatch).
	DisableFusion bool
}

// Context returns the execution context, defaulting to Background.
func (c RunContext) Context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	//mkvet:ignore context-discipline nil-Ctx fallback for direct engine invocation (tests, tools); workflow executions always populate Ctx via ExecuteCtx
	return context.Background()
}

// CostBreakdown decomposes a job's simulated makespan into the phases of
// the paper's cost model (Table 1 plus per-job overhead).
type CostBreakdown struct {
	Overhead cluster.Seconds
	Pull     cluster.Seconds
	Load     cluster.Seconds
	Shuffle  cluster.Seconds
	Proc     cluster.Seconds
	Push     cluster.Seconds
}

// Total sums the phases.
func (c CostBreakdown) Total() cluster.Seconds {
	return c.Overhead + c.Pull + c.Load + c.Shuffle + c.Proc + c.Push
}

// RunResult reports one executed job.
type RunResult struct {
	Job        string
	Engine     string
	Makespan   cluster.Seconds
	Breakdown  CostBreakdown
	Iterations int
	// ProcVolume / GenVolume / ShuffleVolume are the surcharge-weighted
	// PROCESS volume, the generated (operator output) volume, and the
	// shuffle-operator input volume the cost function charged — the measured
	// counterparts of Volumes.Proc/Gen/Shuffle, kept so observers can derive
	// effective per-phase rates from the breakdown. AggVolume is the subset
	// that flowed through single-machine aggregation (NonAssocGroupBy).
	ProcVolume, GenVolume, ShuffleVolume, AggVolume int64
	// Graph marks that the job was costed at the engine's vertex-centric
	// PROCESS rate (detected graph idiom).
	Graph bool
	// OOM reports that the job's working set exceeded the engine's memory
	// capacity; the makespan includes the thrashing penalty.
	OOM bool
	// Failures counts injected worker failures; Recovery is the simulated
	// time the engine's fault-tolerance mechanism spent recovering from
	// them (included in Makespan).
	Failures int
	Recovery cluster.Seconds
	// Straggler reports that the attempt landed on an injected slow node.
	Straggler bool
	// Checkpoints is how many periodic checkpoints the attempt wrote
	// (rollback-recovery engines only).
	Checkpoints int
	// DFSRetries counts input blocks re-fetched after injected read faults.
	DFSRetries int
	Trace      *exec.Trace
	// PullBytes/PushBytes are the effective volumes moved at job edges.
	PullBytes, PushBytes int64
}

// InputPath returns the DFS path an external input is read from: source
// operators carry an explicit path, intermediates are stored under their
// relation name.
func InputPath(op *ir.Op) string {
	if op.Type == ir.OpInput && op.Params.Path != "" {
		return op.Params.Path
	}
	return op.Out
}

// Run executes the plan: reads the fragment's external inputs from the
// DFS, evaluates the operators through the shared kernels, writes external
// outputs back, and computes the simulated makespan from the engine's
// profile and the logical volumes observed. Non-native WHILE fragments must
// be expanded into per-iteration jobs by the caller before reaching Run.
func Run(ctx RunContext, p *Plan) (*RunResult, error) {
	if p.While != nil && !p.Iterative {
		return nil, fmt.Errorf("%s: WHILE fragment requires the iteration driver", p.Engine.Name())
	}
	cctx := ctx.Context()
	if err := cctx.Err(); err != nil {
		return nil, fmt.Errorf("%s: job %s: %w", p.Engine.Name(), p.Frag.Name(), err)
	}
	// Transient whole-job failures (driver/master loss) are injected before
	// any output is written, so a retried attempt replays cleanly.
	if ctx.Chaos.CrashesJob(p.Frag.Name(), ctx.Attempt) {
		ctx.Metrics.Counter("chaos_job_crashes_total").Add(1)
		ctx.Log.WithJob(p.Frag.Name()).WithAttempt(ctx.Attempt).Warn("job_crash_injected").
			Str("engine", p.Engine.Name()).Emit()
		return nil, fmt.Errorf("%s: job %s: %w", p.Engine.Name(), p.Frag.Name(),
			&TransientError{Job: p.Frag.Name(), Attempt: ctx.Attempt})
	}
	env := exec.Env{}
	pullBytes, dfsRetries, pullSp, err := runPull(ctx, p, env)
	if err != nil {
		return nil, err
	}
	trace, procSp, err := runProcess(ctx, p, env)
	if err != nil {
		return nil, err
	}
	pushBytes, pushSp, err := runPush(ctx, p, env)
	if err != nil {
		return nil, err
	}
	ctx.Metrics.Counter("dfs_pull_bytes_total").Add(pullBytes)
	ctx.Metrics.Counter("dfs_push_bytes_total").Add(pushBytes)
	ctx.Metrics.Counter("engine_jobs_total").Add(1)

	res := &RunResult{
		Job:        p.Frag.Name(),
		Engine:     p.Engine.Name(),
		Trace:      trace,
		PullBytes:  pullBytes,
		PushBytes:  pushBytes,
		DFSRetries: dfsRetries,
	}
	if p.While != nil {
		res.Iterations = trace.Iterations[p.While.ID]
	}
	res.Breakdown, res.OOM = p.Engine.cost(ctx.Cluster, p, res)
	res.Makespan = res.Breakdown.Total()
	if ctx.Chaos != nil {
		applyChaos(ctx, p, res)
	}
	// The simulated cost breakdown is only known now; place the already-
	// closed phase spans on the simulated timeline after the fact (pull
	// covers PULL+LOAD, process covers SHUFFLE+PROCESS).
	bd := res.Breakdown
	pullSp.SetSim(float64(bd.Overhead), float64(bd.Pull+bd.Load))
	procSp.SetSim(float64(bd.Overhead+bd.Pull+bd.Load), float64(bd.Shuffle+bd.Proc))
	pushSp.SetSim(float64(bd.Overhead+bd.Pull+bd.Load+bd.Shuffle+bd.Proc), float64(bd.Push))
	return res, nil
}

// runPull reads the fragment's external inputs into env, recording the
// "pull" phase span. The chaos plan may fail individual block reads; a
// failed read is re-fetched from a replica, paying the transfer a second
// time. The returned span is already ended; the caller places it on the
// simulated timeline once the cost breakdown is known.
func runPull(ctx RunContext, p *Plan, env exec.Env) (int64, int, *obs.Span, error) {
	sp := ctx.Rec.StartSpan(ctx.Span, "pull", "phase")
	defer sp.End()
	var pullBytes int64
	retries := 0
	for i, in := range p.Frag.ExtIn {
		rel, st, err := ctx.DFS.ReadRelationStat(InputPath(in))
		if err != nil {
			return 0, 0, sp, fmt.Errorf("%s: %w", p.Engine.Name(), err)
		}
		// Columnar shuffle files account at their compact wire volume; TSV
		// files at the decoded relation's effective size, exactly as before.
		b := rel.EffectiveBytes()
		if st.Codec == relation.CodecColumnar {
			b = st.WireBytes
		}
		if ctx.Chaos.FailsRead(p.Frag.Name(), ctx.Attempt, i) {
			// The replica re-read moves the same bytes again.
			retries++
			pullBytes += b
		}
		rel.Name = in.Out
		env[in.Out] = rel
		pullBytes += b
	}
	if retries > 0 {
		sp.SetInt("dfs_retries", int64(retries))
		ctx.Metrics.Counter("chaos_dfs_read_retries_total").Add(int64(retries))
		ctx.Log.WithJob(p.Frag.Name()).WithAttempt(ctx.Attempt).Warn("dfs_read_retry").
			Int("retries", int64(retries)).Emit()
	}
	sp.SetInt("bytes", pullBytes)
	sp.SetInt("inputs", int64(len(p.Frag.ExtIn)))
	return pullBytes, retries, sp, nil
}

// runProcess evaluates the fragment's operators through the shared
// kernels, recording the "process" phase span. Eligible operator chains
// fuse into streaming pipelines: only the fragment's external outputs must
// materialize, so interior SELECT/PROJECT/ARITH/JOIN/AGG chains run as
// single pull pipelines with no intermediate relations. The recorded trace
// is identical either way (fuse.go reconstructs it), so plans, costs, and
// golden traces do not depend on the fusion setting.
func runProcess(ctx RunContext, p *Plan, env exec.Env) (*exec.Trace, *obs.Span, error) {
	sp := ctx.Rec.StartSpan(ctx.Span, "process", "phase")
	defer sp.End()
	cctx := ctx.Context()
	trace := exec.NewTrace()
	extOut := make(map[*ir.Op]bool, len(p.Frag.ExtOut))
	for _, op := range p.Frag.ExtOut {
		extOut[op] = true
	}
	err := exec.RunOps(p.Frag.Ops, env, trace, exec.RunOptions{
		Keep: func(op *ir.Op) bool { return extOut[op] },
		// Cancellation is observed at execution-unit granularity: a
		// cancelled multi-operator job stops between kernels/pipelines
		// instead of running the whole fragment to completion.
		Check:      cctx.Err,
		SkipInputs: true,
		NoFuse:     ctx.DisableFusion,
	})
	if err != nil {
		return nil, sp, fmt.Errorf("%s: job %s: %w", p.Engine.Name(), p.Frag.Name(), err)
	}
	ops := 0
	for _, op := range p.Frag.Ops {
		if op.Type != ir.OpInput {
			ops++
		}
	}
	sp.SetInt("ops", int64(ops))
	return trace, sp, nil
}

// runPush writes the fragment's external outputs back to the DFS,
// recording the "push" phase span.
func runPush(ctx RunContext, p *Plan, env exec.Env) (int64, *obs.Span, error) {
	sp := ctx.Rec.StartSpan(ctx.Span, "push", "phase")
	defer sp.End()
	cctx := ctx.Context()
	var pushBytes int64
	for _, out := range p.Frag.ExtOut {
		if err := cctx.Err(); err != nil {
			return 0, sp, fmt.Errorf("%s: job %s: %w", p.Engine.Name(), p.Frag.Name(), err)
		}
		rel, ok := env[out.Out]
		if !ok {
			return 0, sp, fmt.Errorf("%s: output %q not materialized", p.Engine.Name(), out.Out)
		}
		// Intra-run shuffles (outputs another job reads) may use the compact
		// columnar wire format; sinks and loop temporaries stay TSV so
		// published results and golden fixtures are untouched.
		codec := relation.CodecTSV
		if ctx.ShuffleCodec == relation.CodecColumnar && p.Frag.ConsumedOutside(out) {
			codec = relation.CodecColumnar
		}
		st, err := ctx.DFS.WriteRelationCodec(out.Out, rel, codec)
		if err != nil {
			return 0, sp, err
		}
		// Per-codec shuffle counters feed estimator calibration: the
		// encoded-vs-logical ratio is what WithShuffleCodec scales by.
		if codec == relation.CodecColumnar {
			pushBytes += st.WireBytes
			ctx.Metrics.Counter("shuffle_codec_columnar_total").Add(1)
			ctx.Metrics.Counter("shuffle_columnar_encoded_bytes_total").Add(st.PhysicalBytes)
			ctx.Metrics.Counter("shuffle_columnar_logical_bytes_total").Add(rel.EffectiveBytes())
		} else {
			pushBytes += rel.EffectiveBytes()
			ctx.Metrics.Counter("shuffle_codec_tsv_total").Add(1)
			ctx.Metrics.Counter("shuffle_tsv_encoded_bytes_total").Add(st.PhysicalBytes)
			ctx.Metrics.Counter("shuffle_tsv_logical_bytes_total").Add(rel.EffectiveBytes())
		}
	}
	sp.SetInt("bytes", pushBytes)
	sp.SetInt("outputs", int64(len(p.Frag.ExtOut)))
	return pushBytes, sp, nil
}

// cost converts observed volumes into simulated time. This is the engine
// side of the paper's cost function (§5.2): PULL and PUSH at the job's
// edges, LOAD for engines with an ingest transformation, and PROCESS per
// operator — paid once per operator, while merging lets all operators share
// a single PULL/LOAD/PUSH.
func (e *Engine) cost(c *cluster.Cluster, p *Plan, res *RunResult) (CostBreakdown, bool) {
	pullBytes, pushBytes, trace := res.PullBytes, res.PushBytes, res.Trace
	nodes := e.EffectiveNodes(c)
	fn := e.RateNodes(c)
	bd := CostBreakdown{
		Overhead: cluster.Seconds(e.prof.PerJobOverheadS),
		Pull:     cluster.TransferTime(pullBytes, e.prof.PullMBps*fn),
		Load:     cluster.TransferTime(pullBytes, e.prof.LoadMBps*fn),
		Push:     cluster.TransferTime(pushBytes, e.prof.PushMBps*fn),
	}

	// PROCESS: cumulative per-operator volumes (inputs + produced data),
	// with a surcharge on shuffle operators for partition/sort engines,
	// split into aggregation vs other work when the engine's high-level
	// GROUP BY is non-associative (Lindi: aggregation collapses to one
	// machine).
	graph := p.Iterative && p.While != nil && ir.DetectGraphIdiom(p.While) != nil
	rate := e.prof.ProcMBps
	if graph && e.prof.GraphProcMBps > 0 {
		rate = e.prof.GraphProcMBps
	}
	shuf := e.prof.ShuffleFactor
	if shuf <= 0 {
		shuf = 1
	}
	var aggBytes, otherBytes, genBytes, shufBytes int64
	addOp := func(op *ir.Op) {
		b := trace.ProcBytes[op.ID]
		// Cumulative produced volume = processed minus consumed
		// (accumulates across WHILE iterations).
		genBytes += trace.ProcBytes[op.ID] - trace.InBytes[op.ID]
		if ir.IsShuffleOp(op.Type) {
			b = int64(float64(b) * shuf)
			shufBytes += trace.InBytes[op.ID]
		}
		if e.prof.NonAssocGroupBy && op.Type == ir.OpAgg {
			aggBytes += b
		} else {
			otherBytes += b
		}
	}
	for _, op := range p.Frag.Ops {
		if op.Type == ir.OpWhile && op.Params.Body != nil {
			for _, bop := range allBodyOps(op.Params.Body) {
				addOp(bop)
			}
			continue
		}
		if op.Type != ir.OpInput {
			addOp(op)
		}
	}
	res.ProcVolume = otherBytes + aggBytes
	res.GenVolume = genBytes
	res.ShuffleVolume = shufBytes
	res.AggVolume = aggBytes
	res.Graph = graph
	if e.prof.LoadOutputs {
		bd.Load += cluster.TransferTime(genBytes, e.prof.LoadMBps*fn)
	}
	if !graph {
		// Graph-idiom plans communicate through the engine's vertex
		// messaging, already covered by GraphProcMBps.
		bd.Shuffle = cluster.TransferTime(shufBytes, e.prof.ShuffleMBps*fn)
	}
	proc := cluster.TransferTime(otherBytes, rate*fn) +
		cluster.TransferTime(aggBytes, rate) // one machine
	if e.prof.NonAssocGroupBy {
		// Collecting the aggregation input onto a single machine moves it
		// over one node's network link.
		bd.Shuffle += cluster.TransferTime(aggBytes, e.prof.ShuffleMBps)
	}
	// Codegen quality (paper §4.3, §6.4): naive plans re-scan per
	// operator; Musketeer-optimized plans carry a small residual tax over
	// the hand-optimized baseline.
	switch p.Mode {
	case ModeNaive:
		proc = cluster.Seconds(float64(proc) * e.prof.NaiveFactor)
	case ModeOptimized:
		proc = cluster.Seconds(float64(proc) * (1 + e.prof.CodegenTaxPct/100))
	}

	// Memory capacity: in-memory engines thrash once the working set
	// (largest materialized relation, or the pulled inputs) exceeds the
	// deployment's capacity. CROSS JOIN outputs are weighted by the
	// engine's cartesian blow-up factor.
	oom := false
	if e.prof.MemCapGB > 0 {
		// Memory capacity scales with physical nodes, not rate efficiency.
		capBytes := int64(e.prof.MemCapGB * 1e9 * float64(nodes))
		peak := pullBytes
		if graph && e.prof.GraphMemFactor > 1 {
			peak = int64(float64(pullBytes) * e.prof.GraphMemFactor)
		}
		blowup := e.prof.CrossJoinBlowup
		if blowup <= 0 {
			blowup = 1
		}
		var visit func(op *ir.Op)
		visit = func(op *ir.Op) {
			if op.Type == ir.OpInput {
				return
			}
			if op.Params.Body != nil {
				for _, bop := range op.Params.Body.Ops {
					visit(bop)
				}
				return
			}
			b := trace.OutBytes[op.ID]
			if op.Type == ir.OpCrossJoin {
				b = int64(float64(b) * blowup)
			}
			if b > peak {
				peak = b
			}
		}
		for _, op := range p.Frag.Ops {
			visit(op)
		}
		if peak > capBytes {
			oom = true
			proc = cluster.Seconds(float64(proc) * e.prof.ThrashFactor)
		}
	}
	bd.Proc = proc
	return bd, oom
}

func allBodyOps(d *ir.DAG) []*ir.Op {
	var ops []*ir.Op
	for _, op := range d.Ops {
		if op.Type == ir.OpInput {
			continue
		}
		ops = append(ops, op)
		if op.Params.Body != nil {
			ops = append(ops, allBodyOps(op.Params.Body)...)
		}
	}
	return ops
}

// Volumes aggregates a prospective job's estimated data movement for
// planning-time costing.
type Volumes struct {
	// Pull / Push are the job-edge DFS volumes.
	Pull, Push int64
	// Proc is the summed per-operator PROCESS volume (inputs + outputs,
	// shuffle surcharge already applied, multiplied by expected iterations
	// for WHILE fragments); AggProc is the subset flowing through
	// aggregation operators.
	Proc, AggProc int64
	// Gen is the summed generated (operator output) volume, which feeds
	// the LOAD phase of engines that materialize results in memory.
	Gen int64
	// Shuffle is the summed input volume of shuffle operators, moved over
	// the network by distributed engines.
	Shuffle int64
	// Peak is the largest single estimated relation (cross-join weighted),
	// checked against the engine's memory capacity.
	Peak int64
	// Graph marks a detected graph idiom (vertex-centric PROCESS rate).
	Graph bool
	// ExtraJobs adds per-job overheads beyond the first.
	ExtraJobs int
}

// Rates is the tunable-rate slice of an engine's profile: the per-node
// phase throughputs (and per-job overhead) the planning-time cost function
// runs on. The structural profile facts — paradigm flags, memory capacity,
// shuffle surcharges — stay on Profile; Rates is what feedback calibration
// refines (§5.2's Table 1 constants, made continuous).
type Rates struct {
	OverheadS     float64 `json:"overhead_s"`
	PullMBps      float64 `json:"pull_mbps"`
	LoadMBps      float64 `json:"load_mbps,omitempty"`
	ProcMBps      float64 `json:"proc_mbps"`
	GraphProcMBps float64 `json:"graph_proc_mbps,omitempty"`
	PushMBps      float64 `json:"push_mbps"`
	ShuffleMBps   float64 `json:"shuffle_mbps,omitempty"`
}

// SeedRates returns the engine's Table-1 calibrated rates — the seed a
// feedback calibration starts from, and what EstimateCost runs on.
func (e *Engine) SeedRates() Rates {
	return Rates{
		OverheadS:     e.prof.PerJobOverheadS,
		PullMBps:      e.prof.PullMBps,
		LoadMBps:      e.prof.LoadMBps,
		ProcMBps:      e.prof.ProcMBps,
		GraphProcMBps: e.prof.GraphProcMBps,
		PushMBps:      e.prof.PushMBps,
		ShuffleMBps:   e.prof.ShuffleMBps,
	}
}

// EstimateCost predicts a job's makespan from estimated volumes without
// executing it — the planning-time side of the cost function used by the
// DAG partitioner and the automatic mapper (§5.2) — at the engine's seed
// (Table 1) rates.
func (e *Engine) EstimateCost(c *cluster.Cluster, v Volumes) cluster.Seconds {
	return e.EstimateCostRates(c, v, e.SeedRates())
}

// EstimateCostRates is EstimateCost evaluated at explicit rates, so a
// calibration layer can re-score candidate mappings on learned throughputs
// without touching the engine's structural profile. With r == SeedRates()
// the result is bit-identical to EstimateCost.
func (e *Engine) EstimateCostRates(c *cluster.Cluster, v Volumes, r Rates) cluster.Seconds {
	nodes := e.EffectiveNodes(c)
	fn := e.RateNodes(c)
	rate := r.ProcMBps
	if v.Graph && r.GraphProcMBps > 0 {
		rate = r.GraphProcMBps
	}
	t := cluster.Seconds(r.OverheadS*float64(1+v.ExtraJobs)) +
		cluster.TransferTime(v.Pull, r.PullMBps*fn) +
		cluster.TransferTime(v.Pull, r.LoadMBps*fn) +
		cluster.TransferTime(v.Push, r.PushMBps*fn)
	if e.prof.LoadOutputs {
		t += cluster.TransferTime(v.Gen, r.LoadMBps*fn)
	}
	if !v.Graph {
		t += cluster.TransferTime(v.Shuffle, r.ShuffleMBps*fn)
	}
	proc := cluster.TransferTime(v.Proc-v.AggProc, rate*fn)
	if e.prof.NonAssocGroupBy {
		proc += cluster.TransferTime(v.AggProc, rate) // one machine
		t += cluster.TransferTime(v.AggProc, r.ShuffleMBps)
	} else {
		proc += cluster.TransferTime(v.AggProc, rate*fn)
	}
	if e.prof.MemCapGB > 0 {
		peak := v.Peak
		if v.Pull > peak {
			peak = v.Pull
		}
		if v.Graph && e.prof.GraphMemFactor > 1 {
			if g := int64(float64(v.Pull) * e.prof.GraphMemFactor); g > peak {
				peak = g
			}
		}
		if peak > int64(e.prof.MemCapGB*1e9*float64(nodes)) {
			proc = cluster.Seconds(float64(proc) * e.prof.ThrashFactor)
		}
	}
	return t + proc
}

// ObservedRates derives the effective per-node phase rates one executed
// job actually achieved, by inverting the cost function over the measured
// breakdown and the volumes it charged. Fields the job gives no clean
// signal for are zero (no data moved, thrashing run, single-machine
// aggregation mixing rates). This is the measurement half of feedback
// calibration: under fault-free runs the observed rates converge on the
// profile seeds, while systematic effects the planner does not price —
// codegen tax, chaos-degraded throughput — show up as persistent residuals
// the calibration layer can learn.
func (e *Engine) ObservedRates(c *cluster.Cluster, res *RunResult) Rates {
	fn := e.RateNodes(c)
	r := Rates{OverheadS: float64(res.Breakdown.Overhead)}
	mbps := func(bytes int64, secs cluster.Seconds) float64 {
		if bytes <= 0 || secs <= 0 {
			return 0
		}
		return float64(bytes) / 1e6 / float64(secs) / fn
	}
	r.PullMBps = mbps(res.PullBytes, res.Breakdown.Pull)
	r.PushMBps = mbps(res.PushBytes, res.Breakdown.Push)
	loadVol := res.PullBytes
	if e.prof.LoadOutputs {
		loadVol += res.GenVolume
	}
	r.LoadMBps = mbps(loadVol, res.Breakdown.Load)
	if !e.prof.NonAssocGroupBy {
		// NonAssoc engines fold a single-link aggregation collect into the
		// shuffle phase; the blended rate is not a network throughput.
		r.ShuffleMBps = mbps(res.ShuffleVolume, res.Breakdown.Shuffle)
	}
	if !res.OOM && res.AggVolume == 0 {
		// A thrashing run measures the penalty, not the rate; an aggregation
		// split across single-machine and distributed rates is not separable
		// from the breakdown alone.
		proc := mbps(res.ProcVolume, res.Breakdown.Proc)
		if res.Graph {
			r.GraphProcMBps = proc
		} else {
			r.ProcMBps = proc
		}
	}
	return r
}

// ShuffleSurcharge returns the engine's PROCESS multiplier for shuffle
// operators (≥ 1).
func (e *Engine) ShuffleSurcharge() float64 {
	if e.prof.ShuffleFactor <= 0 {
		return 1
	}
	return e.prof.ShuffleFactor
}

// CrossBlowup returns the engine's cartesian working-set multiplier (≥ 1).
func (e *Engine) CrossBlowup() float64 {
	if e.prof.CrossJoinBlowup <= 0 {
		return 1
	}
	return e.prof.CrossJoinBlowup
}
