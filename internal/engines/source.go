package engines

import (
	"fmt"
	"strings"

	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// dialect selects the target language/API for generated code. Musketeer
// instantiates per-(operator, back-end) code templates and concatenates
// them into a job (paper §4.3); renderSource is that template engine.
type dialect uint8

const (
	dialectSpark dialect = iota
	dialectNaiad
	dialectHadoop
	dialectMetis
	dialectPowerGraph
	dialectGraphChi
	dialectC
)

// Language names the implementation language of the engine's generated
// code (the language column of paper Table 3).
func (e *Engine) Language() string {
	switch e.dialect {
	case dialectSpark:
		return "Scala"
	case dialectNaiad:
		return "C#"
	case dialectHadoop:
		return "Java"
	case dialectC:
		return "C"
	default: // Metis, PowerGraph, GraphChi, X-Stream
		return "C++"
	}
}

func renderSource(d dialect, p *Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// musketeer-generated %s code for job %q (%s)\n",
		p.Engine.Name(), p.Frag.Name(), p.Mode)
	var ins, outs []string
	for _, op := range p.Frag.ExtIn {
		ins = append(ins, op.Out)
	}
	for _, op := range p.Frag.ExtOut {
		outs = append(outs, op.Out)
	}
	fmt.Fprintf(&b, "// reads: %s  writes: %s\n", strings.Join(ins, ", "), strings.Join(outs, ", "))
	if p.Iterative && p.While != nil {
		fmt.Fprintf(&b, "// native iteration: max %d iterations", p.While.Params.MaxIter)
		if p.While.Params.CondRel != "" {
			fmt.Fprintf(&b, ", loop while %q non-empty", p.While.Params.CondRel)
		}
		b.WriteByte('\n')
	}
	// Look-ahead type inference (paper §4.3.4): optimized and
	// hand-written code is rendered with the inferred tuple types;
	// naive per-operator templates fall back to untyped rows.
	var schemas map[*ir.Op]relation.Schema
	if p.Mode != ModeNaive {
		schemas, _ = p.Frag.Schemas()
	}
	switch d {
	case dialectSpark, dialectNaiad:
		renderFunctional(&b, d, p, schemas)
	case dialectHadoop, dialectMetis:
		renderMapReduce(&b, p, schemas)
	case dialectPowerGraph, dialectGraphChi:
		renderGAS(&b, p)
	default:
		renderC(&b, p)
	}
	return b.String()
}

// tupleType renders a schema as a generated-code tuple type, e.g.
// "(id: Long, street: String, price: Double)". Unknown schemas render as
// the untyped row type — which is exactly what naive codegen emits.
func tupleType(schemas map[*ir.Op]relation.Schema, op *ir.Op) string {
	if schemas == nil {
		return "Row"
	}
	schema, ok := schemas[op]
	if !ok {
		return "Row"
	}
	parts := make([]string, len(schema.Cols))
	for i, c := range schema.Cols {
		parts[i] = c.Name + ": " + typeName(c.Kind)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func typeName(k relation.Kind) string {
	switch k {
	case relation.KindInt:
		return "Long"
	case relation.KindFloat:
		return "Double"
	default:
		return "String"
	}
}

// renderFunctional emits Scala-like (Spark) / C#-like (Naiad) dataflow
// code: one chained expression per stage when scans are shared, one binding
// per operator when naive. With look-ahead type inference the bindings are
// annotated with inferred tuple types; naive code works on untyped rows.
func renderFunctional(b *strings.Builder, d dialect, p *Plan, schemas map[*ir.Op]relation.Schema) {
	decl, read, write := "val", "sc.textFile", "saveAsTextFile"
	if d == dialectNaiad {
		decl, read, write = "var", "controller.ReadFromHDFS", "WriteToHDFS"
	}
	bind := func(op *ir.Op) string {
		if schemas == nil {
			return fmt.Sprintf("%s %s", decl, op.Out)
		}
		return fmt.Sprintf("%s %s: Collection[%s]", decl, op.Out, tupleType(schemas, op))
	}
	for _, in := range p.Frag.ExtIn {
		fmt.Fprintf(b, "%s = %s(%q)\n", bind(in), read, "hdfs://"+inputPath(in))
	}
	for _, st := range p.Stages {
		if len(st.Ops) == 1 || p.Mode == ModeNaive {
			for _, op := range st.Ops {
				fmt.Fprintf(b, "%s = %s\n", bind(op), functionalExpr(d, op))
			}
			continue
		}
		// Shared scan: fuse the stage into one chained expression
		// (paper Listing 4: the maps collapse into one pass).
		last := st.Ops[len(st.Ops)-1]
		var chain strings.Builder
		chain.WriteString(functionalExpr(d, st.Ops[0]))
		for _, op := range st.Ops[1:] {
			chain.WriteString("\n    ." + chainedExpr(d, op))
		}
		fmt.Fprintf(b, "%s = %s // fused: shared scan + inferred types\n", bind(last), chain.String())
	}
	for _, out := range p.Frag.ExtOut {
		fmt.Fprintf(b, "%s.%s(%q)\n", out.Out, write, "hdfs://out/"+out.Out)
	}
}

func inputPath(op *ir.Op) string {
	if op.Type == ir.OpInput && op.Params.Path != "" {
		return op.Params.Path
	}
	return op.Out
}

func functionalExpr(d dialect, op *ir.Op) string {
	in := func(i int) string {
		if i < len(op.Inputs) {
			return op.Inputs[i].Out
		}
		return "?"
	}
	switch op.Type {
	case ir.OpSelect:
		return fmt.Sprintf("%s.filter(r => %s)", in(0), op.Params.Pred)
	case ir.OpProject:
		return fmt.Sprintf("%s.map(r => (%s))", in(0), strings.Join(op.Params.Columns, ", "))
	case ir.OpJoin:
		return fmt.Sprintf("%s.map(l => (l.%s, l)).join(%s.map(r => (r.%s, r))).map((k, (l, r)) => flatten(k, l, r))",
			in(0), strings.Join(op.Params.LeftCols, "."), in(1), strings.Join(op.Params.RightCols, "."))
	case ir.OpCrossJoin:
		return fmt.Sprintf("%s.cartesian(%s)", in(0), in(1))
	case ir.OpAgg:
		aggs := make([]string, len(op.Params.Aggs))
		for i, a := range op.Params.Aggs {
			aggs[i] = a.String()
		}
		return fmt.Sprintf("%s.map(r => ((%s), r)).reduceByKey((a, b) => [%s])",
			in(0), strings.Join(op.Params.GroupBy, ", "), strings.Join(aggs, ", "))
	case ir.OpArith:
		return fmt.Sprintf("%s.map(r => { r.%s = %s %s %s; r })",
			in(0), op.Params.Dst, op.Params.ALeft, arithSym(op.Params.AOp), op.Params.ARght)
	case ir.OpUnion:
		return fmt.Sprintf("%s.union(%s)", in(0), in(1))
	case ir.OpIntersect:
		return fmt.Sprintf("%s.intersection(%s)", in(0), in(1))
	case ir.OpDifference:
		return fmt.Sprintf("%s.subtract(%s)", in(0), in(1))
	case ir.OpDistinct:
		return fmt.Sprintf("%s.distinct()", in(0))
	case ir.OpSort:
		dir := "ascending"
		if op.Params.Desc {
			dir = "descending"
		}
		return fmt.Sprintf("%s.sortBy(r => (%s), %s)", in(0), strings.Join(op.Params.SortBy, ", "), dir)
	case ir.OpLimit:
		return fmt.Sprintf("%s.take(%d)", in(0), op.Params.Limit)
	case ir.OpUDF:
		return fmt.Sprintf("udf_%s(%s)", op.Params.UDFName, in(0))
	default:
		return fmt.Sprintf("/* %s */", op)
	}
}

// chainedExpr renders the operator as a method chained onto the previous
// stage result (the fused form: no re-keying map, types inferred ahead).
func chainedExpr(d dialect, op *ir.Op) string {
	switch op.Type {
	case ir.OpSelect:
		return fmt.Sprintf("filter(r => %s)", op.Params.Pred)
	case ir.OpProject:
		return fmt.Sprintf("map(r => (%s))", strings.Join(op.Params.Columns, ", "))
	case ir.OpAgg:
		aggs := make([]string, len(op.Params.Aggs))
		for i, a := range op.Params.Aggs {
			aggs[i] = a.String()
		}
		return fmt.Sprintf("reduceByKey((a, b) => [%s]) /* key (%s) prepared upstream */",
			strings.Join(aggs, ", "), strings.Join(op.Params.GroupBy, ", "))
	case ir.OpArith:
		return fmt.Sprintf("map(r => { r.%s = %s %s %s; r })",
			op.Params.Dst, op.Params.ALeft, arithSym(op.Params.AOp), op.Params.ARght)
	case ir.OpJoin:
		return fmt.Sprintf("join(%s) /* pre-keyed on (%s) */", op.Inputs[1].Out, strings.Join(op.Params.RightCols, ", "))
	case ir.OpDistinct:
		return "distinct()"
	default:
		return strings.TrimPrefix(functionalExpr(d, op), op.Inputs[0].Out+".")
	}
}

func arithSym(a ir.ArithOp) string {
	switch a {
	case ir.ArithAdd:
		return "+"
	case ir.ArithSub:
		return "-"
	case ir.ArithMul:
		return "*"
	default:
		return "/"
	}
}

// renderMapReduce emits a Java-like (Hadoop) / C++-like (Metis) job
// description: map-phase pipeline, the shuffle key, reduce-phase pipeline.
// With type inference, each stage declares the tuple type it emits.
func renderMapReduce(b *strings.Builder, p *Plan, schemas map[*ir.Op]relation.Schema) {
	for si, st := range p.Stages {
		var mapOps, reduceOps []*ir.Op
		var shuffle *ir.Op
		for _, op := range st.Ops {
			switch {
			case ir.IsShuffleOp(op.Type) && shuffle == nil:
				shuffle = op
			case shuffle == nil:
				mapOps = append(mapOps, op)
			default:
				reduceOps = append(reduceOps, op)
			}
		}
		fmt.Fprintf(b, "class Stage%dMapper extends Mapper {\n", si)
		fmt.Fprintf(b, "  void map(Row r) {\n")
		for _, op := range mapOps {
			fmt.Fprintf(b, "    // %s\n    r = %s(r);\n", op.Type, strings.ToLower(op.Type.String()))
		}
		if shuffle != nil {
			fmt.Fprintf(b, "    emit(key(%s), r); // shuffle for %s\n", shuffleKey(shuffle), shuffle.Type)
		} else {
			fmt.Fprintf(b, "    emit(r); // map-only stage\n")
		}
		fmt.Fprintf(b, "  }\n}\n")
		if shuffle != nil {
			fmt.Fprintf(b, "class Stage%dReducer extends Reducer {\n", si)
			fmt.Fprintf(b, "  // emits: %s\n", tupleType(schemas, st.Ops[len(st.Ops)-1]))
			fmt.Fprintf(b, "  void reduce(Key k, Iterable<Row> rows) {\n")
			fmt.Fprintf(b, "    // %s: %s\n", shuffle.Type, shuffleDetail(shuffle))
			for _, op := range reduceOps {
				fmt.Fprintf(b, "    // fused reduce-side %s (%s)\n", op.Type, op.Out)
			}
			fmt.Fprintf(b, "  }\n}\n")
		}
	}
}

func shuffleKey(op *ir.Op) string {
	switch op.Type {
	case ir.OpJoin:
		return strings.Join(op.Params.LeftCols, ", ")
	case ir.OpAgg:
		return strings.Join(op.Params.GroupBy, ", ")
	case ir.OpSort:
		return strings.Join(op.Params.SortBy, ", ")
	default:
		return "row"
	}
}

func shuffleDetail(op *ir.Op) string {
	switch op.Type {
	case ir.OpJoin:
		return fmt.Sprintf("join %s with %s", op.Inputs[0].Out, op.Inputs[1].Out)
	case ir.OpAgg:
		aggs := make([]string, len(op.Params.Aggs))
		for i, a := range op.Params.Aggs {
			aggs[i] = a.String()
		}
		return strings.Join(aggs, ", ")
	default:
		return op.Type.String()
	}
}

// renderGAS emits a C++-like vertex program from the detected graph idiom.
func renderGAS(b *strings.Builder, p *Plan) {
	idiom := ir.DetectGraphIdiom(p.While)
	if idiom == nil {
		fmt.Fprintf(b, "// ERROR: no graph idiom\n")
		return
	}
	fmt.Fprintf(b, "struct vertex_program : public ivertex_program {\n")
	fmt.Fprintf(b, "  gather_type gather(vertex v, edge e) const {\n")
	for _, a := range idiom.Gather.Params.Aggs {
		fmt.Fprintf(b, "    return %s(e.source().data()); // %s\n", strings.ToLower(a.Func.String()), a)
	}
	fmt.Fprintf(b, "  }\n  void apply(vertex v, const gather_type& total) {\n")
	for _, op := range bodyComputeOps(p.While) {
		if op.Type == ir.OpArith {
			fmt.Fprintf(b, "    v.data().%s = %s %s %s;\n",
				op.Params.Dst, op.Params.ALeft, arithSym(op.Params.AOp), op.Params.ARght)
		}
	}
	fmt.Fprintf(b, "  }\n  void scatter(vertex v, edge e) const {\n")
	fmt.Fprintf(b, "    e.target().signal(); // join on %s\n", strings.Join(idiom.Scatter.Params.LeftCols, ", "))
	fmt.Fprintf(b, "  }\n};\n")
	fmt.Fprintf(b, "// engine.run(vertex_program, max_iter=%d)\n", p.While.Params.MaxIter)
}

// renderC emits a single-threaded C sketch.
func renderC(b *strings.Builder, p *Plan) {
	fmt.Fprintf(b, "int main(void) {\n")
	for _, in := range p.Frag.ExtIn {
		fmt.Fprintf(b, "  table_t *%s = load_tsv(%q);\n", cIdent(in.Out), inputPath(in))
	}
	if p.While != nil {
		fmt.Fprintf(b, "  for (int iter = 0; iter < %d; iter++) {\n", p.While.Params.MaxIter)
	}
	for _, st := range p.Stages {
		for _, op := range st.Ops {
			fmt.Fprintf(b, "  %stable_t *%s = %s(%s); /* %s */\n",
				indentIf(p.While != nil), cIdent(op.Out), strings.ToLower(op.Type.String()),
				cInputs(op), opDetail(op))
		}
	}
	if p.While != nil {
		fmt.Fprintf(b, "  }\n")
	}
	for _, out := range p.Frag.ExtOut {
		fmt.Fprintf(b, "  write_tsv(%s, \"out/%s\");\n", cIdent(out.Out), out.Out)
	}
	fmt.Fprintf(b, "  return 0;\n}\n")
}

func indentIf(cond bool) string {
	if cond {
		return "  "
	}
	return ""
}

func cIdent(s string) string {
	return strings.NewReplacer("-", "_", "/", "_", ".", "_", "+", "_").Replace(s)
}

func cInputs(op *ir.Op) string {
	names := make([]string, len(op.Inputs))
	for i, in := range op.Inputs {
		names[i] = cIdent(in.Out)
	}
	return strings.Join(names, ", ")
}

func opDetail(op *ir.Op) string {
	switch op.Type {
	case ir.OpSelect:
		return op.Params.Pred.String()
	case ir.OpProject:
		return strings.Join(op.Params.Columns, ",")
	case ir.OpJoin:
		return fmt.Sprintf("on %s=%s", strings.Join(op.Params.LeftCols, ","), strings.Join(op.Params.RightCols, ","))
	case ir.OpAgg:
		return fmt.Sprintf("group by %s", strings.Join(op.Params.GroupBy, ","))
	case ir.OpSort:
		return fmt.Sprintf("order by %s", strings.Join(op.Params.SortBy, ","))
	case ir.OpLimit:
		return fmt.Sprintf("first %d", op.Params.Limit)
	default:
		return op.Type.String()
	}
}
