package engines

import (
	"errors"
	"testing"

	"musketeer/internal/cluster"
)

func TestFaultToleranceMechanisms(t *testing.T) {
	want := map[string]FaultTolerance{
		"hadoop": FTTaskLevel, "spark": FTLineage,
		"naiad": FTCheckpoint, "powergraph": FTCheckpoint,
		"metis": FTNone, "graphchi": FTNone, "serial": FTNone,
	}
	for name, ft := range want {
		e := Registry()[name]
		if got := e.FaultTolerance(); got != ft {
			t.Errorf("%s fault tolerance = %s, want %s", name, got, ft)
		}
	}
	for _, f := range []FaultTolerance{FTNone, FTTaskLevel, FTLineage, FTCheckpoint} {
		if f.String() == "" {
			t.Error("empty mechanism name")
		}
	}
}

func TestRecoveryOverheadDisabled(t *testing.T) {
	var fm *FaultModel
	if over, n := fm.RecoveryOverhead(Hadoop(), cluster.EC2(100), 1000); over != 0 || n != 0 {
		t.Error("nil model should inject nothing")
	}
	fm2 := &FaultModel{MTBFSeconds: 0}
	if over, n := fm2.RecoveryOverhead(Hadoop(), cluster.EC2(100), 1000); over != 0 || n != 0 {
		t.Error("zero MTBF should inject nothing")
	}
	if (&FaultModel{}).String() != "faults: disabled" {
		t.Error("disabled model string")
	}
}

func TestRecoveryOverheadOrdering(t *testing.T) {
	// Over a long job with frequent failures, the per-failure penalties
	// must order: task-level < checkpoint-with-short-interval and
	// restart-from-scratch dwarfs everything on a single machine.
	c := cluster.EC2(100)
	base := cluster.Seconds(2000)
	fm := FaultModel{MTBFSeconds: 300, CheckpointIntervalS: 60, Seed: 7}

	hOver, hFail := fm.RecoveryOverhead(Hadoop(), c, base)
	if hFail == 0 {
		t.Fatal("expected failures on a 2000s job with 300s MTBF")
	}
	sOver, _ := fm.RecoveryOverhead(Spark(), c, base)
	if sOver <= hOver {
		t.Errorf("lineage recovery (%v) should cost more than task retry (%v)", sOver, hOver)
	}
	// A single-machine engine restarting from scratch loses big chunks.
	serialOver, serialFail := fm.RecoveryOverhead(SerialC(), c, base)
	if serialFail > 0 && serialOver <= hOver {
		t.Errorf("restart-from-scratch (%v) should cost more than task retry (%v)", serialOver, hOver)
	}
}

func TestRecoveryDeterministic(t *testing.T) {
	fm := FaultModel{MTBFSeconds: 200, Seed: 3}
	c := cluster.EC2(16)
	a1, n1 := fm.RecoveryOverhead(Naiad(), c, 1500)
	a2, n2 := fm.RecoveryOverhead(Naiad(), c, 1500)
	if a1 != a2 || n1 != n2 {
		t.Error("fault injection not deterministic for a fixed seed")
	}
}

func TestRunWithFaultInjection(t *testing.T) {
	dag := maxPropertyPrice()
	frag := wholeFragment(t, dag)
	// Big logical scale so the job is long enough to attract failures.
	fs := seedDFS(t, 30_000_000)
	plan, err := Naiad().Plan(frag, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(RunContext{DFS: fs, Cluster: cluster.EC2(100)}, plan)
	if err != nil {
		t.Fatal(err)
	}
	fs2 := seedDFS(t, 30_000_000)
	faulty, err := Run(RunContext{
		DFS: fs2, Cluster: cluster.EC2(100),
		Faults: &FaultModel{MTBFSeconds: 20, Seed: 1},
	}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Failures == 0 {
		t.Fatalf("no failures injected (makespan %v)", faulty.Makespan)
	}
	if faulty.Makespan <= clean.Makespan {
		t.Errorf("faulty run (%v) should be slower than clean run (%v)", faulty.Makespan, clean.Makespan)
	}
	if faulty.Recovery <= 0 {
		t.Error("recovery time not accounted")
	}
	// Results are unaffected by failures (recovery is transparent).
	a, err := fs.ReadRelation("street_price")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs2.ReadRelation("street_price")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("failure injection changed results")
	}
}

func TestFailAttemptDeterministicPerAttempt(t *testing.T) {
	fm := &FaultModel{MTBFSeconds: 100, JobFailureProb: 0.5, Seed: 7}
	// Deterministic: the same (job, attempt) always draws the same fate.
	for attempt := 0; attempt < 8; attempt++ {
		a := fm.FailAttempt("job_a", attempt)
		b := fm.FailAttempt("job_a", attempt)
		if (a == nil) != (b == nil) {
			t.Fatalf("attempt %d: non-deterministic draw", attempt)
		}
	}
	// Varies across attempts: with p=0.5 over 32 attempts both fates occur.
	died, survived := 0, 0
	for attempt := 0; attempt < 32; attempt++ {
		if err := fm.FailAttempt("job_a", attempt); err != nil {
			if !IsTransient(err) {
				t.Fatalf("FailAttempt returned non-transient error %v", err)
			}
			died++
		} else {
			survived++
		}
	}
	if died == 0 || survived == 0 {
		t.Errorf("attempt draws degenerate: %d died, %d survived", died, survived)
	}
	// Disabled / nil models never fail.
	if err := (&FaultModel{MTBFSeconds: 100}).FailAttempt("j", 0); err != nil {
		t.Errorf("JobFailureProb=0 failed a job: %v", err)
	}
	var nilFM *FaultModel
	if err := nilFM.FailAttempt("j", 0); err != nil {
		t.Errorf("nil model failed a job: %v", err)
	}
	if IsTransient(errDummy) {
		t.Error("IsTransient matched a plain error")
	}
}

var errDummy = errors.New("plain failure")
