package engines

import (
	"errors"
	"testing"

	"musketeer/internal/chaos"
	"musketeer/internal/cluster"
)

func TestFaultToleranceMechanisms(t *testing.T) {
	want := map[string]FaultTolerance{
		"hadoop": FTTaskLevel, "spark": FTLineage,
		"naiad": FTCheckpoint, "powergraph": FTCheckpoint,
		"metis": FTNone, "graphchi": FTNone, "serial": FTNone,
	}
	for name, ft := range want {
		e := Registry()[name]
		if got := e.FaultTolerance(); got != ft {
			t.Errorf("%s fault tolerance = %s, want %s", name, got, ft)
		}
	}
	for _, f := range []FaultTolerance{FTNone, FTTaskLevel, FTLineage, FTCheckpoint} {
		if f.String() == "" {
			t.Error("empty mechanism name")
		}
	}
}

// TestFaultPenaltyOrdering pins the Table 3 recovery hierarchy: for the SAME
// injected fault — a worker dying t seconds into a job of duration base —
// checkpoint rollback beats lineage recomputation, lineage beats a full
// restart, and task re-execution is cheapest of all when the fault strikes
// late.
func TestFaultPenaltyOrdering(t *testing.T) {
	const (
		nodes    = 100.0
		depth    = 3
		interval = 60.0
	)
	base := cluster.Seconds(2000)
	tp := 1000.0 // fault at mid-job

	task := FaultPenalty(FTTaskLevel, nodes, depth, base, tp, interval)
	ckpt := FaultPenalty(FTCheckpoint, nodes, depth, base, tp, interval)
	lin := FaultPenalty(FTLineage, nodes, depth, base, tp, interval)
	restart := FaultPenalty(FTNone, nodes, depth, base, tp, interval)

	if !(task < ckpt && ckpt < lin && lin < restart) {
		t.Errorf("recovery hierarchy violated: task=%v ckpt=%v lineage=%v restart=%v",
			task, ckpt, lin, restart)
	}
	// Checkpoint rollback never exceeds the interval; restart loses all
	// progress.
	if float64(ckpt) >= interval {
		t.Errorf("checkpoint rollback %v exceeds interval %v", ckpt, interval)
	}
	if float64(restart) != tp {
		t.Errorf("restart should lose all %vs of progress, lost %v", tp, restart)
	}
	// Lineage grows with fault lateness; task retry does not.
	late := FaultPenalty(FTLineage, nodes, depth, base, 1900, interval)
	if late <= lin {
		t.Error("lineage recovery should cost more for later faults")
	}
	if FaultPenalty(FTTaskLevel, nodes, depth, base, 1900, interval) != task {
		t.Error("task-level recovery should be independent of fault position")
	}
}

func TestRecoverFaultsDisabled(t *testing.T) {
	c := cluster.EC2(100)
	if rec := RecoverFaults(nil, Hadoop(), c, 3, 1000, "j", 0); rec.Failures != 0 || rec.Penalty != 0 {
		t.Error("nil plan should inject nothing")
	}
	p := &chaos.Plan{Seed: 5} // no MTBF
	if rec := RecoverFaults(p, Hadoop(), c, 3, 1000, "j", 0); rec.Failures != 0 || rec.Penalty != 0 {
		t.Error("zero MTBF should inject nothing")
	}
}

func TestRecoverFaultsDeterministicAndEngineAware(t *testing.T) {
	c := cluster.EC2(100)
	p := &chaos.Plan{Seed: 3, MTBFSeconds: 100}
	base := cluster.Seconds(2000)

	a := RecoverFaults(p, Hadoop(), c, 3, base, "job_a", 0)
	b := RecoverFaults(p, Hadoop(), c, 3, base, "job_a", 0)
	if a.Failures != b.Failures || a.Penalty != b.Penalty {
		t.Error("fault injection not deterministic for a fixed seed")
	}
	if a.Failures == 0 {
		t.Fatal("expected failures on a 2000s job with 100s MTBF")
	}
	// The SAME faults strike every distributed engine (failure points are
	// keyed by job, not engine), but each pays its own mechanism's price:
	// Spark's lineage recomputation costs more than Hadoop's task retry.
	s := RecoverFaults(p, Spark(), c, 3, base, "job_a", 0)
	if s.Failures != a.Failures {
		t.Errorf("spark saw %d faults, hadoop %d — injection must be engine-independent",
			s.Failures, a.Failures)
	}
	if s.Penalty <= a.Penalty {
		t.Errorf("lineage recovery (%v) should cost more than task retry (%v)", s.Penalty, a.Penalty)
	}
	// Rollback engines pay the periodic checkpoint tax even without faults.
	quiet := &chaos.Plan{Seed: 3, MTBFSeconds: 1e12}
	n := RecoverFaults(quiet, Naiad(), c, 3, base, "job_q", 0)
	if n.Checkpoints != int(float64(base)/Naiad().Profile().CheckpointS) {
		t.Errorf("naiad wrote %d checkpoints over %vs at %vs intervals",
			n.Checkpoints, base, Naiad().Profile().CheckpointS)
	}
	if h := RecoverFaults(quiet, Hadoop(), c, 3, base, "job_q", 0); h.Checkpoints != 0 {
		t.Error("task-level engines must not checkpoint")
	}
}

func TestExpectedRecoveryPrefersCheaperMechanisms(t *testing.T) {
	c := cluster.EC2(100)
	p := &chaos.Plan{Seed: 1, MTBFSeconds: 300}
	base := cluster.Seconds(2000)

	task := ExpectedRecovery(p, Hadoop(), c, 3, base)
	lin := ExpectedRecovery(p, Spark(), c, 3, base)
	none := ExpectedRecovery(p, Metis(), c, 3, base)
	if task <= 0 {
		t.Fatal("expected recovery term must be positive under a fault rate")
	}
	if lin <= task {
		t.Errorf("expected lineage cost (%v) should exceed task retry (%v)", lin, task)
	}
	// Single-machine restart loses half the job per fault, but its exposure
	// is 1/N of the cluster's: fewer expected faults, each catastrophic.
	if none <= 0 {
		t.Error("restart engines must carry an expected-recovery term")
	}
	if ExpectedRecovery(nil, Hadoop(), c, 3, base) != 0 {
		t.Error("nil plan must add no expected recovery")
	}
	// Straggler exposure shows up even without task faults.
	slow := &chaos.Plan{Seed: 1, SlowNodeProb: 0.5, SlowFactor: 3}
	if got := ExpectedRecovery(slow, Hadoop(), c, 3, 100); float64(got) != 0.5*2*100 {
		t.Errorf("straggler expectation = %v, want 100", got)
	}
}

func TestRunWithFaultInjection(t *testing.T) {
	dag := maxPropertyPrice()
	frag := wholeFragment(t, dag)
	// Big logical scale so the job is long enough to attract failures.
	fs := seedDFS(t, 30_000_000)
	plan, err := Naiad().Plan(frag, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(RunContext{DFS: fs, Cluster: cluster.EC2(100)}, plan)
	if err != nil {
		t.Fatal(err)
	}
	fs2 := seedDFS(t, 30_000_000)
	faulty, err := Run(RunContext{
		DFS: fs2, Cluster: cluster.EC2(100),
		Chaos: &chaos.Plan{MTBFSeconds: 20, Seed: 1},
	}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Failures == 0 {
		t.Fatalf("no failures injected (makespan %v)", faulty.Makespan)
	}
	if faulty.Makespan <= clean.Makespan {
		t.Errorf("faulty run (%v) should be slower than clean run (%v)", faulty.Makespan, clean.Makespan)
	}
	if faulty.Recovery <= 0 {
		t.Error("recovery time not accounted")
	}
	// Results are unaffected by failures (recovery is transparent).
	a, err := fs.ReadRelation("street_price")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs2.ReadRelation("street_price")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("failure injection changed results")
	}
}

// TestRunWithDFSReadFaults: injected block-read failures re-fetch from a
// replica, paying the transfer twice — visible as extra PULL volume.
func TestRunWithDFSReadFaults(t *testing.T) {
	dag := maxPropertyPrice()
	frag := wholeFragment(t, dag)
	fs := seedDFS(t, 5_000_000)
	plan, err := Hadoop().Plan(frag, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(RunContext{DFS: fs, Cluster: cluster.EC2(100)}, plan)
	if err != nil {
		t.Fatal(err)
	}
	fs2 := seedDFS(t, 5_000_000)
	faulty, err := Run(RunContext{
		DFS: fs2, Cluster: cluster.EC2(100),
		Chaos: &chaos.Plan{DFSReadFailProb: 1, Seed: 1}, // every read fails once
	}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.DFSRetries != len(frag.ExtIn) {
		t.Errorf("retries = %d, want one per input (%d)", faulty.DFSRetries, len(frag.ExtIn))
	}
	if faulty.PullBytes != 2*clean.PullBytes {
		t.Errorf("retried pull moved %d bytes, want twice the clean %d", faulty.PullBytes, clean.PullBytes)
	}
	if faulty.Breakdown.Pull <= clean.Breakdown.Pull {
		t.Error("re-fetch must cost simulated PULL time")
	}
}

func TestRunJobCrashIsTransient(t *testing.T) {
	dag := maxPropertyPrice()
	frag := wholeFragment(t, dag)
	fs := seedDFS(t, 1_000_000)
	plan, err := Hadoop().Plan(frag, ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	p := &chaos.Plan{JobCrashProb: 1, Seed: 1}
	_, err = Run(RunContext{DFS: fs, Cluster: cluster.EC2(100), Chaos: p}, plan)
	if err == nil {
		t.Fatal("crash probability 1 must kill the attempt")
	}
	if !IsTransient(err) {
		t.Fatalf("job crash should surface as transient, got %v", err)
	}
	// The crash happens before output: nothing was written.
	if _, rerr := fs.ReadRelation("street_price"); rerr == nil {
		t.Error("crashed attempt must not write output")
	}
	if IsTransient(errDummy) {
		t.Error("IsTransient matched a plain error")
	}
}

var errDummy = errors.New("plain failure")
