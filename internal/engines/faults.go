package engines

import (
	"errors"
	"fmt"
	"math"

	"musketeer/internal/chaos"
	"musketeer/internal/cluster"
)

// TransientError is a fault-injected whole-job failure: the job's driver
// (or single machine) died mid-run, so the attempt produced nothing and
// can simply be re-submitted. The scheduler's retry predicate
// (IsTransient) recognizes it.
type TransientError struct {
	Job     string
	Attempt int
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("transient failure killed job %s (attempt %d)", e.Job, e.Attempt+1)
}

// IsTransient reports whether err is (or wraps) a fault-injected transient
// job failure — the retry predicate handed to the scheduler.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// FaultTolerance classifies how a back-end recovers from worker failure
// (the fault-tolerance column of paper Table 3).
type FaultTolerance uint8

const (
	// FTNone restarts the whole job from scratch (serial C, Metis,
	// GraphChi — single-machine systems have nothing to recover onto,
	// so a crash means rerunning).
	FTNone FaultTolerance = iota
	// FTTaskLevel re-executes only the failed node's tasks from
	// materialized intermediate state (MapReduce/Hadoop).
	FTTaskLevel
	// FTLineage recomputes lost partitions from their lineage
	// (Spark RDDs); cheaper than a restart, costlier than task retry
	// because upstream partitions may need recomputation.
	FTLineage
	// FTCheckpoint rolls back to the last global checkpoint
	// (Naiad; PowerGraph snapshots similarly).
	FTCheckpoint
)

// String names the mechanism as Table 3 does.
func (f FaultTolerance) String() string {
	switch f {
	case FTTaskLevel:
		return "task-level"
	case FTLineage:
		return "lineage"
	case FTCheckpoint:
		return "checkpoint"
	default:
		return "none"
	}
}

// FaultTolerance maps the engine to its Table 3 mechanism.
func (e *Engine) FaultTolerance() FaultTolerance {
	switch e.name {
	case "hadoop":
		return FTTaskLevel
	case "spark":
		return FTLineage
	case "naiad", "naiad-lindi", "powergraph":
		return FTCheckpoint
	default: // metis, graphchi, serial, xstream — single machine
		return FTNone
	}
}

// FaultPenalty is the simulated recovery cost of one worker failure
// striking at position t (seconds into a job of duration base) under the
// given mechanism, on an engine occupying nodes machines. This is the
// per-fault cost math of Table 3's column:
//
//   - none:        single-machine restart — all progress up to t is lost.
//   - task-level:  re-execute the failed node's tasks from materialized
//     intermediate state: base/nodes, independent of when the fault hit.
//   - lineage:     recompute the lost partitions plus the upstream lineage
//     accrued by t: (base/nodes)·(1 + depth·t/base), where depth is the
//     job's operator-chain length (more lineage to replay the deeper the
//     job and the later the fault).
//   - checkpoint:  roll every worker back to the last global checkpoint:
//     t mod interval.
//
// For a fault at the same t, checkpoint < lineage < restart whenever the
// checkpoint interval is shorter than a node's task share — the ordering
// the evaluation's recovery experiment demonstrates.
func FaultPenalty(mech FaultTolerance, nodes float64, depth int, base cluster.Seconds, t, interval float64) cluster.Seconds {
	if base <= 0 {
		return 0
	}
	if nodes < 1 {
		nodes = 1
	}
	switch mech {
	case FTTaskLevel:
		return cluster.Seconds(float64(base) / nodes)
	case FTLineage:
		return cluster.Seconds(float64(base) / nodes * (1 + float64(depth)*t/float64(base)))
	case FTCheckpoint:
		if interval <= 0 {
			interval = 60
		}
		return cluster.Seconds(math.Mod(t, interval))
	default:
		return cluster.Seconds(t)
	}
}

// Recovery reports how a job recovered from its injected task-level
// faults.
type Recovery struct {
	Mechanism FaultTolerance
	// Failures is the number of worker failures injected into the attempt.
	Failures int
	// Penalty is the simulated time the mechanism spent recovering,
	// including the steady-state checkpoint tax for FTCheckpoint engines.
	Penalty cluster.Seconds
	// Checkpoints is how many periodic checkpoints the attempt wrote.
	Checkpoints int
	// Interval is the checkpoint period used (engine profile or plan).
	Interval float64
}

// RecoverFaults draws the attempt's worker failures from the chaos plan
// and prices the engine's recovery. base is the attempt's fault-free
// duration; depth is the fragment's operator count (lineage length). The
// expected failure count scales with the job's node-time exposure —
// base × active nodes — against the cluster-wide MTBF, so a job spread
// over the whole cluster attracts proportionally more faults than a
// single-machine one.
func RecoverFaults(p *chaos.Plan, e *Engine, c *cluster.Cluster, depth int, base cluster.Seconds, job string, attempt int) Recovery {
	mech := e.FaultTolerance()
	rec := Recovery{Mechanism: mech, Interval: p.Interval(e.prof.CheckpointS)}
	if p == nil || p.MTBFSeconds <= 0 || base <= 0 {
		return rec
	}
	if mech == FTCheckpoint {
		// Checkpointing is not free even when no fault strikes: the tax is
		// what buys the cheap rollback.
		rec.Checkpoints = int(float64(base) / rec.Interval)
		rec.Penalty += cluster.Seconds(float64(rec.Checkpoints) * p.CheckpointCost())
	}
	nodes := float64(e.EffectiveNodes(c))
	expected := float64(base) * nodes / (float64(c.Nodes) * p.MTBFSeconds)
	rec.Failures = p.TaskFailures(job, attempt, expected)
	for i := 0; i < rec.Failures; i++ {
		t := p.FailurePoint(job, attempt, i) * float64(base)
		rec.Penalty += FaultPenalty(mech, nodes, depth, base, t, rec.Interval)
	}
	return rec
}

// ExpectedRecovery is the planning-time (analytic) counterpart of
// RecoverFaults: the expected simulated time a job of duration base loses
// to faults on this engine under the plan's rates, with no draws taken.
// The estimator adds it to fragment costs so the automatic mapper can
// prefer an engine with cheaper recovery under a configured fault rate.
// Second-order effects (recovery time itself attracting faults) are
// ignored.
func ExpectedRecovery(p *chaos.Plan, e *Engine, c *cluster.Cluster, depth int, base cluster.Seconds) cluster.Seconds {
	if p == nil || base <= 0 || math.IsInf(float64(base), 1) {
		return 0
	}
	mech := e.FaultTolerance()
	interval := p.Interval(e.prof.CheckpointS)
	var out float64
	if p.MTBFSeconds > 0 {
		if mech == FTCheckpoint {
			out += float64(base) / interval * p.CheckpointCost()
		}
		nodes := float64(e.EffectiveNodes(c))
		expected := float64(base) * nodes / (float64(c.Nodes) * p.MTBFSeconds)
		var per float64
		switch mech {
		case FTTaskLevel:
			per = float64(base) / nodes
		case FTLineage:
			// E[t] = base/2 ⇒ expected lineage factor 1 + depth/2.
			per = float64(base) / nodes * (1 + float64(depth)/2)
		case FTCheckpoint:
			per = interval / 2
		default:
			per = float64(base) / 2
		}
		out += expected * per
	}
	// Straggler exposure is engine-independent but still part of the
	// expected cost of running under this plan.
	if p.SlowNodeProb > 0 {
		out += p.SlowNodeProb * (p.SlowBy() - 1) * float64(base)
	}
	return cluster.Seconds(out)
}

// applyChaos folds the chaos plan's post-execution faults into the job's
// simulated account: straggler slowdown first (a slow node stretches the
// whole attempt), then task-level failures recovered per the engine's
// Table 3 mechanism. Periodic checkpoints and the recovery itself are
// placed on the attempt's simulated timeline as spans; counters land in
// the metrics registry. Caller guarantees ctx.Chaos != nil.
func applyChaos(ctx RunContext, p *Plan, res *RunResult) {
	cp := ctx.Chaos
	if cp.Straggles(res.Job, ctx.Attempt) {
		res.Straggler = true
		res.Makespan = cluster.Seconds(float64(res.Makespan) * cp.SlowBy())
		ctx.Span.SetInt("straggler", 1)
		ctx.Metrics.Counter("chaos_stragglers_total").Add(1)
		ctx.Log.WithJob(res.Job).WithAttempt(ctx.Attempt).Warn("straggler").
			Float("slow_by", cp.SlowBy()).Emit()
	}
	rec := RecoverFaults(cp, p.Engine, ctx.Cluster, len(p.Frag.ComputeOps()), res.Makespan, res.Job, ctx.Attempt)
	res.Failures = rec.Failures
	res.Recovery = rec.Penalty
	res.Checkpoints = rec.Checkpoints
	if rec.Checkpoints > 0 && ctx.Rec != nil {
		ck := cp.CheckpointCost()
		for k := 1; k <= rec.Checkpoints; k++ {
			csp := ctx.Rec.StartSpan(ctx.Span, "checkpoint", "chaos")
			csp.SetInt("seq", int64(k))
			csp.End()
			csp.SetSim(float64(k)*rec.Interval-ck, ck)
		}
		ctx.Metrics.Counter("chaos_checkpoints_total").Add(int64(rec.Checkpoints))
	}
	if rec.Failures > 0 {
		rsp := ctx.Rec.StartSpan(ctx.Span, "recover:"+rec.Mechanism.String(), "chaos")
		rsp.SetInt("failures", int64(rec.Failures))
		rsp.End()
		// Recovery extends the attempt past its fault-free makespan.
		rsp.SetSim(float64(res.Makespan), float64(rec.Penalty))
		ctx.Metrics.Counter("chaos_task_faults_total").Add(int64(rec.Failures))
		ctx.Metrics.Histogram("chaos_recovery_s").Observe(float64(rec.Penalty))
		ctx.Log.WithJob(res.Job).WithAttempt(ctx.Attempt).Warn("fault_recovery").
			Str("mechanism", rec.Mechanism.String()).
			Int("failures", int64(rec.Failures)).
			Float("penalty_s", float64(rec.Penalty)).
			Emit()
	}
	res.Makespan += rec.Penalty
}
