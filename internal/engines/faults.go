package engines

import (
	"errors"
	"fmt"
	"math/rand"

	"musketeer/internal/cluster"
)

// TransientError is a fault-injected whole-job failure: the job's driver
// (or single machine) died mid-run, so the attempt produced nothing and
// can simply be re-submitted. The scheduler's retry predicate
// (IsTransient) recognizes it.
type TransientError struct {
	Job     string
	Attempt int
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("transient failure killed job %s (attempt %d)", e.Job, e.Attempt+1)
}

// IsTransient reports whether err is (or wraps) a fault-injected transient
// job failure — the retry predicate handed to the scheduler.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// FaultTolerance classifies how a back-end recovers from worker failure
// (the fault-tolerance column of paper Table 3).
type FaultTolerance uint8

const (
	// FTNone restarts the whole job from scratch (serial C, Metis,
	// GraphChi — single-machine systems have nothing to recover onto,
	// so a crash means rerunning).
	FTNone FaultTolerance = iota
	// FTTaskLevel re-executes only the failed node's tasks from
	// materialized intermediate state (MapReduce/Hadoop).
	FTTaskLevel
	// FTLineage recomputes lost partitions from their lineage
	// (Spark RDDs); cheaper than a restart, costlier than task retry
	// because upstream partitions may need recomputation.
	FTLineage
	// FTCheckpoint rolls back to the last global checkpoint
	// (Naiad; PowerGraph snapshots similarly).
	FTCheckpoint
)

// String names the mechanism as Table 3 does.
func (f FaultTolerance) String() string {
	switch f {
	case FTTaskLevel:
		return "task-level"
	case FTLineage:
		return "lineage"
	case FTCheckpoint:
		return "checkpoint"
	default:
		return "none"
	}
}

// faultToleranceOf maps engines to their Table 3 mechanism.
func (e *Engine) FaultTolerance() FaultTolerance {
	switch e.name {
	case "hadoop":
		return FTTaskLevel
	case "spark":
		return FTLineage
	case "naiad", "naiad-lindi", "powergraph":
		return FTCheckpoint
	default: // metis, graphchi, serial, xstream — single machine
		return FTNone
	}
}

// FaultModel injects worker failures into job executions. MTBF is the
// simulated mean time between failures across the whole cluster; a job of
// duration d on n nodes expects d/MTBF failures. The model is seeded and
// deterministic.
type FaultModel struct {
	// MTBFSeconds is the cluster-wide mean time between worker failures
	// in simulated seconds. Zero disables injection.
	MTBFSeconds float64
	// CheckpointIntervalS is the checkpoint period for FTCheckpoint
	// engines (default 60 simulated seconds).
	CheckpointIntervalS float64
	// JobFailureProb is the probability that an individual job attempt is
	// killed outright (driver/master loss) rather than merely slowed by
	// worker churn. Failed attempts surface as TransientError so the
	// scheduler's per-job retry can re-submit them. Zero disables.
	JobFailureProb float64
	// Seed makes the injection reproducible.
	Seed int64
}

// FailAttempt draws the (job, attempt) pair's fate from the seeded model:
// a nil return means the attempt survives, a *TransientError means the
// attempt dies before producing output. The draw is deterministic per
// (seed, job, attempt) — and varies across attempts, so retried jobs are
// not doomed to repeat the same failure. Nil models never fail anything.
func (fm *FaultModel) FailAttempt(job string, attempt int) error {
	if fm == nil || fm.JobFailureProb <= 0 {
		return nil
	}
	seed := fm.Seed
	for _, ch := range job {
		seed = seed*131 + int64(ch)
	}
	seed = seed*1000003 + int64(attempt) + 1
	if rand.New(rand.NewSource(seed)).Float64() < fm.JobFailureProb {
		return &TransientError{Job: job, Attempt: attempt}
	}
	return nil
}

// RecoveryOverhead returns the extra simulated time failures add to a job
// of baseline duration `base` on the given engine, plus the number of
// failures injected. The per-failure penalty follows the engine's recovery
// mechanism:
//
//   - none:        the job restarts — lose the progress made so far
//     (uniformly distributed across the job, so base/2 expected).
//   - task-level:  re-run the failed worker's share: base / nodes.
//   - lineage:     recompute the lost partitions and some upstream
//     lineage: 2 × base / nodes.
//   - checkpoint:  roll every worker back to the last checkpoint:
//     CheckpointInterval/2 expected, plus the steady-state
//     checkpointing tax folded into the penalty.
func (fm *FaultModel) RecoveryOverhead(e *Engine, c *cluster.Cluster, base cluster.Seconds) (cluster.Seconds, int) {
	if fm == nil || fm.MTBFSeconds <= 0 || base <= 0 {
		return 0, 0
	}
	r := rand.New(rand.NewSource(fm.Seed))
	interval := fm.CheckpointIntervalS
	if interval <= 0 {
		interval = 60
	}
	nodes := float64(e.EffectiveNodes(c))
	// Expected failures scale with exposure: duration × active nodes,
	// against the cluster-wide MTBF normalized to the full cluster size.
	exposure := float64(base) * nodes / float64(c.Nodes)
	expected := exposure / fm.MTBFSeconds
	failures := int(expected)
	if r.Float64() < expected-float64(failures) {
		failures++
	}
	if failures == 0 {
		return 0, 0
	}
	var penalty float64
	for i := 0; i < failures; i++ {
		switch e.FaultTolerance() {
		case FTTaskLevel:
			penalty += float64(base) / nodes
		case FTLineage:
			penalty += 2 * float64(base) / nodes
		case FTCheckpoint:
			penalty += interval * (0.25 + 0.5*r.Float64())
		default: // restart from scratch
			penalty += float64(base) * r.Float64()
		}
	}
	return cluster.Seconds(penalty), failures
}

// String renders the model for logs.
func (fm *FaultModel) String() string {
	if fm == nil || fm.MTBFSeconds <= 0 {
		return "faults: disabled"
	}
	return fmt.Sprintf("faults: MTBF=%.0fs checkpoint=%.0fs seed=%d",
		fm.MTBFSeconds, fm.CheckpointIntervalS, fm.Seed)
}
