package engines

import (
	"fmt"
	"sort"
	"strings"

	"musketeer/internal/ir"
)

// Capability is an engine's static capability profile: the operator classes
// it can execute at all, independent of cost. The analyzer's feasibility
// pass consults it up front so that impossible front-end/engine pairings
// are rejected with a diagnostic before the partition search runs, instead
// of being silently pruned to an infinite-cost dead end mid-search.
type Capability struct {
	Paradigm Paradigm
	// AllOperators: the engine executes arbitrary relational operators.
	AllOperators bool
	// GraphIdiomOnly: the engine only runs WHILE loops matching the GAS
	// graph idiom (PowerGraph, GraphChi).
	GraphIdiomOnly bool
	// NativeIteration: WHILE loops run inside one job rather than being
	// driver-looped with per-iteration job overheads.
	NativeIteration bool
	// SingleMachine: the engine does not scale past one node.
	SingleMachine bool
	// MaxShufflesPerJob bounds by-key shuffles in one job; -1 = unlimited.
	MaxShufflesPerJob int
}

// Capability derives the engine's capability profile from its paradigm and
// calibrated performance profile.
func (e *Engine) Capability() Capability {
	c := Capability{
		Paradigm:          e.paradigm,
		NativeIteration:   e.prof.NativeIteration,
		SingleMachine:     e.prof.SingleMachine,
		MaxShufflesPerJob: -1,
	}
	switch e.paradigm {
	case ParadigmVertexCentric:
		c.GraphIdiomOnly = true
	case ParadigmMapReduce:
		c.AllOperators = true
		c.MaxShufflesPerJob = 1
	default:
		c.AllOperators = true
	}
	return c
}

// SupportsOp reports whether the engine can, in principle, execute the
// operator in some job (alone if need be). nil means yes; otherwise the
// returned error explains the incapability. This is the per-operator
// projection of ValidFragment: MapReduce and general engines can run any
// single operator (a WHILE body is driver-looped, so its operators must be
// individually supported too), while vertex-centric engines only run WHILE
// loops matching the GAS idiom.
func (e *Engine) SupportsOp(op *ir.Op) error {
	switch e.paradigm {
	case ParadigmVertexCentric:
		if op.Type != ir.OpWhile {
			return fmt.Errorf("%s: vertex-centric back-end cannot run %s; only graph idioms are expressible", e.name, op.Type)
		}
		if ir.DetectGraphIdiom(op) == nil {
			return fmt.Errorf("%s: WHILE %s does not match the GAS idiom", e.name, op.Out)
		}
		return nil
	default:
		if op.Type == ir.OpWhile && op.Params.Body != nil && !e.prof.NativeIteration {
			// Driver-looped: every body operator becomes its own job chain.
			for _, bop := range op.Params.Body.Ops {
				if bop.Type == ir.OpInput {
					continue
				}
				if err := e.SupportsOp(bop); err != nil {
					return fmt.Errorf("%s: WHILE %s body: %w", e.name, op.Out, err)
				}
			}
		}
		return nil
	}
}

// CapabilityMatrix renders the per-engine capability matrix as a table,
// one engine per row, sorted by name (`musketeer check -matrix`).
func CapabilityMatrix(engs []*Engine) string {
	sorted := append([]*Engine(nil), engs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-15s %-10s %-12s %-10s %-9s\n",
		"engine", "paradigm", "operators", "iteration", "machines", "shuffles")
	for _, e := range sorted {
		c := e.Capability()
		ops := "all"
		if c.GraphIdiomOnly {
			ops = "gas-only"
		}
		iter := "driver"
		if c.NativeIteration {
			iter = "native"
		}
		nodes := "cluster"
		if c.SingleMachine {
			nodes = "single"
		}
		shuf := "unlimited"
		if c.MaxShufflesPerJob >= 0 {
			shuf = fmt.Sprintf("%d/job", c.MaxShufflesPerJob)
		}
		fmt.Fprintf(&b, "%-12s %-15s %-10s %-12s %-10s %-9s\n",
			e.name, c.Paradigm, ops, iter, nodes, shuf)
	}
	return b.String()
}
