package musketeer

// Chaos integration tests: a golden Chrome trace for the two-engine
// workflow under a seeded fault plan — the trace must show every recovery
// mechanism working (transient-crash retries, checkpoint spans and
// checkpoint-rollback recovery on the naiad fragment, straggler slowdown
// with a speculative backup attempt, DFS read retries) and be byte-stable
// (ZeroTimes strips wall-clock so only structure is pinned). Regenerate with
//
//	go test -run TestChaosGolden -update .

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"musketeer/internal/core"
	"musketeer/internal/sched"
	"musketeer/internal/workloads"
)

// chaosGoldenPlan is tuned so the fixed seed exercises every fault kind on
// this workflow: at least one job crash (retried), worker faults on both
// engines (task re-execution on hadoop, checkpoint rollback on naiad), a
// straggler slow enough to trigger speculation, and a DFS read retry.
func chaosGoldenPlan() *ChaosPlan {
	return &ChaosPlan{
		Seed:                7,
		JobCrashProb:        0.3,
		MTBFSeconds:         30,
		SlowNodeProb:        0.3,
		SlowFactor:          4,
		DFSReadFailProb:     0.3,
		CheckpointIntervalS: 20,
		CheckpointCostS:     2,
		SpeculativeMultiple: 1.5,
	}
}

// stageChaosTwoEngine is stageTwoEngine with the WHILE fragment forced onto
// naiad instead of metis: naiad checkpoints (Table 3), so the chaos trace
// shows checkpoint spans and checkpoint-rollback recovery next to hadoop's
// task-level re-execution.
func stageChaosTwoEngine(t *testing.T, m *Musketeer) (*Workflow, *Partitioning) {
	t.Helper()
	a := workloads.GenerateGraph("a", 400_000, 2_000_000, 40, 7)
	b := workloads.GenerateGraph("b", 500_000, 2_500_000, 40, 7)
	wl := workloads.CrossCommunityPageRank(a, b, 3)
	if err := wl.Stage(m.fs); err != nil {
		t.Fatal(err)
	}
	dag, err := wl.Build()
	if err != nil {
		t.Fatal(err)
	}
	wf, err := m.FromDAG(dag)
	if err != nil {
		t.Fatal(err)
	}
	wf.Optimize()
	est, err := wf.estimator()
	if err != nil {
		t.Fatal(err)
	}
	hadoop, naiad := m.engines["hadoop"], m.engines["naiad"]
	part, err := core.MapTo(dag, est, hadoop)
	if err != nil {
		t.Fatal(err)
	}
	forced := false
	for i := range part.Jobs {
		frag := part.Jobs[i].Frag
		if frag.While() != nil && naiad.ValidFragment(frag) == nil {
			part.Jobs[i].Engine = naiad
			part.Jobs[i].Cost = est.FragmentCost(frag, naiad)
			forced = true
		}
	}
	if !forced {
		t.Fatal("no WHILE fragment accepted naiad; the workflow is not two-engine")
	}
	return wf, part
}

// chaosTrace runs the chaotic two-engine workflow on a fresh deployment and
// returns the ZeroTimes trace bytes plus the result.
func chaosTrace(t *testing.T) (string, *Result) {
	t.Helper()
	m := New(WithTracing(), WithChaos(chaosGoldenPlan()), WithRetries(5))
	wf, part := stageChaosTwoEngine(t, m)
	res, err := wf.Run(part)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flight == nil {
		t.Fatal("WithTracing execution returned no flight recorder")
	}
	var buf bytes.Buffer
	if err := res.Flight.WriteChromeTrace(&buf, TraceOptions{ZeroTimes: true}); err != nil {
		t.Fatal(err)
	}
	return buf.String(), res
}

// TestChaosGolden pins the chaotic execution's span tree and asserts the
// trace actually demonstrates each recovery mechanism (a quiet plan that
// injects nothing would be a vacuous golden).
func TestChaosGolden(t *testing.T) {
	got, _ := chaosTrace(t)

	for marker, what := range map[string]string{
		`"recover:checkpoint"`: "naiad checkpoint-rollback recovery span",
		`"recover:task-level"`: "hadoop task re-execution recovery span",
		`"checkpoint"`:         "periodic checkpoint span",
		`"attempt":2`:          "scheduler retry of a crashed job attempt",
		`"speculative":1`:      "speculative backup attempt for a straggler",
		`"straggler":1`:        "straggler slowdown attribute",
		`"dfs_retries":`:       "DFS read retry accounting",
	} {
		if !strings.Contains(got, marker) {
			t.Errorf("trace lacks %s (%s)", what, marker)
		}
	}

	path := filepath.Join("testdata", "trace", "chaos.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestChaosGolden -update .` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("chaos trace structure changed.\n--- want\n%s--- got\n%s", string(want), got)
	}
}

// TestChaosFixedSeedDeterministic: two fresh deployments under the same
// plan must agree on the injected faults exactly — equal makespans and
// byte-identical span trees.
func TestChaosFixedSeedDeterministic(t *testing.T) {
	trace1, res1 := chaosTrace(t)
	trace2, res2 := chaosTrace(t)
	if res1.Makespan != res2.Makespan {
		t.Errorf("makespans differ under a fixed seed: %v vs %v", res1.Makespan, res2.Makespan)
	}
	if trace1 != trace2 {
		t.Error("span trees differ under a fixed seed")
	}
}

// TestChaoticExecutionsConcurrent drives concurrent chaotic executions into
// one shared deployment. Meaningful under -race: the fault plan, scheduler
// (with retries and speculation live), metrics registry and accuracy log
// are shared across runs, while each run injects and recovers its own
// faults.
func TestChaoticExecutionsConcurrent(t *testing.T) {
	const runs = 8
	m := New(WithTracing(), WithChaos(chaosGoldenPlan()), WithRetries(5))
	cat := stressCatalog(t, m)
	wf, err := m.CompileHive(stressHive, cat)
	if err != nil {
		t.Fatal(err)
	}

	results := make([]*Result, runs)
	errs := make([]error, runs)
	sched.ForEach(runs, runs, func(i int) {
		results[i], errs[i] = wf.Execute()
	})

	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if results[i].Flight == nil || results[i].Flight.Len() == 0 {
			t.Fatalf("run %d: missing flight recorder", i)
		}
	}
	// The plan is shared and draws are keyed by job identity, so every run
	// injects the same faults and lands on the same makespan.
	for i := 1; i < runs; i++ {
		if results[i].Makespan != results[0].Makespan {
			t.Errorf("run %d makespan %v != run 0 %v (shared plan must inject identically)",
				i, results[i].Makespan, results[0].Makespan)
		}
	}
	if got := m.Metrics().Counter("workflows_completed_total").Value(); got != runs {
		t.Errorf("workflows_completed_total = %d, want %d", got, runs)
	}
}
