package musketeer

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"musketeer/internal/dfs"
	"musketeer/internal/frontends"
	"musketeer/internal/relation"
	"musketeer/internal/sched"
)

// Server is Musketeer's multi-tenant service plane: a long-lived HTTP/JSON
// API over one deployment, turning the one-shot library into the paper's
// "workflows arrive continuously" setting. Each tenant owns a private DFS
// namespace (inputs staged and outputs read through it), submissions are
// admitted through a per-tenant bounded queue drained by deficit-round-
// robin fair scheduling (sched.FairQueue), and — when the deployment was
// built WithPlanCache — repeated submissions of semantically identical
// workflows skip compile/optimize/partition-search via the canonicalized-
// DAG plan cache.
//
// API (all under /api/v1; non-API paths fall through to the debug plane —
// /metrics, /debug/runs, /healthz, pprof):
//
//	POST /api/v1/tenants/{tenant}/inputs/{path...}   stage a TSV relation
//	GET  /api/v1/tenants/{tenant}/outputs/{path...}  fetch a relation as TSV
//	POST /api/v1/tenants/{tenant}/jobs               submit a workflow (202)
//	GET  /api/v1/tenants/{tenant}/jobs               list the tenant's jobs
//	GET  /api/v1/tenants/{tenant}/jobs/{id}          poll one job
//
// Job status transitions queued → running → ok|failed. Submissions beyond
// the tenant's queue bound are rejected with 429. Tenancy is addressed by
// URL path — the service models multi-tenant *isolation* (namespaces,
// fairness), not authentication.
type Server struct {
	m     *Musketeer
	fq    *sched.FairQueue
	mux   *http.ServeMux
	debug http.Handler

	ctx    context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	jobs map[string]*serveJob
	seq  atomic.Int64
}

// ServeOptions configures a Server. Zero values pick defaults.
type ServeOptions struct {
	// Workers bounds concurrently executing submissions across all tenants
	// (default 4). Note this is submission-level admission; each running
	// submission's back-end jobs still share the deployment scheduler.
	Workers int
	// MaxQueued bounds each tenant's waiting submissions; beyond it submit
	// returns 429 (default 64).
	MaxQueued int
	// MaxInFlight bounds each tenant's concurrently running submissions
	// (default Workers).
	MaxInFlight int
	// Weights gives tenants relative dispatch weight (absent = 1).
	Weights map[string]int
}

// serveJob tracks one submission through the queue.
type serveJob struct {
	id     string
	tenant string

	mu        sync.Mutex
	status    string // "queued" | "running" | "ok" | "failed"
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *JobResult
}

// JobStatus is the wire form of a submission's state.
type JobStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// Status is "queued", "running", "ok", or "failed".
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Timestamps are RFC 3339; zero ones are omitted.
	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	// Result is set once Status is "ok".
	Result *JobResult `json:"result,omitempty"`
}

// JobResult summarizes a completed execution.
type JobResult struct {
	// RunID addresses the execution's digest (GET /debug/runs/{id}) and,
	// for traced deployments, its Chrome trace.
	RunID string `json:"run_id,omitempty"`
	// MakespanS is the simulated end-to-end time.
	MakespanS float64 `json:"makespan_s"`
	// Engines are the distinct back-ends the plan used; Jobs its job count.
	Engines []string `json:"engines"`
	Jobs    int      `json:"jobs"`
	// PlanCacheHit reports the execution replayed a cached plan.
	PlanCacheHit bool `json:"plan_cache_hit"`
	// Outputs are the workflow's sink relations, fetchable under
	// /api/v1/tenants/{tenant}/outputs/{name}.
	Outputs []string `json:"outputs"`
	// SubmitToResultMS is wall time from submission to completion.
	SubmitToResultMS float64 `json:"submit_to_result_ms"`
}

// SubmitRequest is the submission wire format.
type SubmitRequest struct {
	// Frontend selects the workflow language: "hive", "beer", "pig", or
	// "gas".
	Frontend string `json:"frontend"`
	// Source is the workflow text.
	Source string `json:"source"`
	// Engine optionally pins one back-end; "" auto-maps.
	Engine string `json:"engine,omitempty"`
	// Mode selects generated-code quality: "optimized" (default), "naive",
	// or "hand".
	Mode string `json:"mode,omitempty"`
	// Catalog binds the workflow's base-table names to the tenant's staged
	// relations.
	Catalog map[string]TableSpec `json:"catalog"`
	// GAS carries the Gather-Apply-Scatter front-end's configuration;
	// required when Frontend is "gas".
	GAS *GASSpec `json:"gas,omitempty"`
}

// TableSpec is one catalog entry: a tenant-relative DFS path and a schema
// as "name:kind" specs.
type TableSpec struct {
	Path   string   `json:"path"`
	Schema []string `json:"schema"`
}

// GASSpec configures the GAS front-end.
type GASSpec struct {
	Vertices string `json:"vertices"`
	Edges    string `json:"edges"`
	Output   string `json:"output,omitempty"`
}

// NewServer builds the deployment's service plane. Close it to drain.
func (m *Musketeer) NewServer(opts ServeOptions) *Server {
	//mkvet:ignore context-discipline the server owns the service plane's lifetime: this is its root context, cancelled by Close, not a per-request scope a caller could pass in
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		m: m,
		fq: sched.NewFairQueue(sched.FairOptions{
			Workers:     opts.Workers,
			MaxQueued:   opts.MaxQueued,
			MaxInFlight: opts.MaxInFlight,
			Weights:     opts.Weights,
		}),
		debug:  m.DebugHandler(),
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*serveJob),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/tenants/{tenant}/inputs/{path...}", s.handleInput)
	mux.HandleFunc("GET /api/v1/tenants/{tenant}/outputs/{path...}", s.handleOutput)
	mux.HandleFunc("POST /api/v1/tenants/{tenant}/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/tenants/{tenant}/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/tenants/{tenant}/jobs/{id}", s.handleJob)
	mux.HandleFunc("/api/", func(w http.ResponseWriter, r *http.Request) {
		serveError(w, http.StatusNotFound, fmt.Errorf("no such API route"))
	})
	mux.Handle("/", s.debug)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close cancels in-flight executions and drains the queue workers.
// Submissions still waiting in the queue remain in status "queued".
func (s *Server) Close() {
	s.cancel()
	s.fq.Close()
}

func serveError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func serveJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// tenantFS resolves the request's tenant namespace, writing a 400 on
// invalid names.
func (s *Server) tenantFS(w http.ResponseWriter, r *http.Request) (*dfs.DFS, string, bool) {
	tenant := r.PathValue("tenant")
	fs, err := s.m.TenantFS(tenant)
	if err != nil {
		serveError(w, http.StatusBadRequest, err)
		return nil, "", false
	}
	return fs, tenant, true
}

// handleInput stages a TSV-encoded relation into the tenant's namespace.
// The optional logical_bytes query parameter sets the relation's logical
// size for the cost model (simulated big data over physically small rows).
func (s *Server) handleInput(w http.ResponseWriter, r *http.Request) {
	fs, _, ok := s.tenantFS(w, r)
	if !ok {
		return
	}
	path := r.PathValue("path")
	if err := dfs.ValidatePath(path); err != nil {
		serveError(w, http.StatusBadRequest, err)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		serveError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	rel, err := relation.DecodeBytes(path, data)
	if err != nil {
		serveError(w, http.StatusBadRequest, err)
		return
	}
	if lb := r.URL.Query().Get("logical_bytes"); lb != "" {
		n, err := strconv.ParseInt(lb, 10, 64)
		if err != nil || n < 0 {
			serveError(w, http.StatusBadRequest, fmt.Errorf("bad logical_bytes %q", lb))
			return
		}
		rel.LogicalBytes = n
	}
	if err := fs.WriteRelation(path, rel); err != nil {
		serveError(w, http.StatusInternalServerError, err)
		return
	}
	serveJSON(w, http.StatusCreated, map[string]any{"path": path, "rows": rel.NumRows()})
}

// handleOutput fetches a relation from the tenant's namespace as TSV.
func (s *Server) handleOutput(w http.ResponseWriter, r *http.Request) {
	fs, _, ok := s.tenantFS(w, r)
	if !ok {
		return
	}
	path := r.PathValue("path")
	if err := dfs.ValidatePath(path); err != nil {
		serveError(w, http.StatusBadRequest, err)
		return
	}
	rel, err := fs.ReadRelation(path)
	if err != nil {
		serveError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	_, _ = w.Write(rel.EncodeBytes())
}

// compile translates a submission into a tenant-bound workflow.
func (s *Server) compile(tenant string, req *SubmitRequest) (*Workflow, error) {
	cat := Catalog{}
	for name, tbl := range req.Catalog {
		if err := dfs.ValidatePath(tbl.Path); err != nil {
			return nil, fmt.Errorf("catalog table %q: %w", name, err)
		}
		cat[name] = frontends.Table{Path: tbl.Path, Schema: relation.NewSchema(tbl.Schema...)}
	}
	var wf *Workflow
	var err error
	switch req.Frontend {
	case "hive":
		wf, err = s.m.CompileHive(req.Source, cat)
	case "beer":
		wf, err = s.m.CompileBEER(req.Source, cat)
	case "pig":
		wf, err = s.m.CompilePig(req.Source, cat)
	case "gas":
		if req.GAS == nil {
			return nil, fmt.Errorf("frontend gas requires the gas config")
		}
		wf, err = s.m.CompileGAS(req.Source, cat, GASConfig{
			Vertices: req.GAS.Vertices, Edges: req.GAS.Edges, Output: req.GAS.Output,
		})
	default:
		return nil, fmt.Errorf("unknown frontend %q (want hive, beer, pig, or gas)", req.Frontend)
	}
	if err != nil {
		return nil, err
	}
	switch req.Mode {
	case "", "optimized":
		wf.Mode = ModeOptimized
	case "naive":
		wf.Mode = ModeNaive
	case "hand":
		wf.Mode = ModeHand
	default:
		return nil, fmt.Errorf("unknown mode %q (want optimized, naive, or hand)", req.Mode)
	}
	if req.Engine != "" {
		if _, ok := s.m.engines[req.Engine]; !ok {
			return nil, fmt.Errorf("unknown engine %q", req.Engine)
		}
	}
	if err := wf.BindTenant(tenant); err != nil {
		return nil, err
	}
	return wf, nil
}

// handleSubmit compiles the submission synchronously (so syntax and
// catalog errors are a 400, not a failed job) and enqueues its execution.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	_, tenant, ok := s.tenantFS(w, r)
	if !ok {
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&req); err != nil {
		serveError(w, http.StatusBadRequest, fmt.Errorf("decoding submission: %w", err))
		return
	}
	wf, err := s.compile(tenant, &req)
	if err != nil {
		serveError(w, http.StatusBadRequest, err)
		return
	}
	job := &serveJob{
		id:        fmt.Sprintf("j-%d", s.seq.Add(1)),
		tenant:    tenant,
		status:    "queued",
		submitted: time.Now(),
	}
	s.m.metrics.Counter("serve_submissions_total").Add(1)
	if err := s.fq.Submit(tenant, func() { s.run(job, wf, req.Engine) }); err != nil {
		if errors.Is(err, sched.ErrQueueFull) {
			s.m.metrics.Counter("serve_rejected_total").Add(1)
			serveError(w, http.StatusTooManyRequests, err)
			return
		}
		serveError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.mu.Lock()
	s.jobs[job.id] = job
	s.mu.Unlock()
	serveJSON(w, http.StatusAccepted, job.snapshot())
}

// run executes one dequeued submission.
func (s *Server) run(job *serveJob, wf *Workflow, engine string) {
	job.mu.Lock()
	job.status = "running"
	job.started = time.Now()
	job.mu.Unlock()

	var res *Result
	var err error
	if engine == "" {
		res, err = wf.ExecuteCtx(s.ctx)
	} else {
		res, err = wf.ExecuteOnCtx(s.ctx, engine)
	}

	job.mu.Lock()
	defer job.mu.Unlock()
	job.finished = time.Now()
	if err != nil {
		job.status = "failed"
		job.err = err.Error()
		s.m.metrics.Counter("serve_failed_total").Add(1)
		return
	}
	var outputs []string
	for _, sink := range wf.dag.Sinks() {
		outputs = append(outputs, sink.Out)
	}
	sort.Strings(outputs)
	job.status = "ok"
	job.result = &JobResult{
		RunID:            res.RunID,
		MakespanS:        float64(res.Makespan),
		Engines:          res.Partitioning.Engines(),
		Jobs:             len(res.Partitioning.Jobs),
		PlanCacheHit:     res.PlanCacheHit,
		Outputs:          outputs,
		SubmitToResultMS: job.finished.Sub(job.submitted).Seconds() * 1e3,
	}
	s.m.metrics.Counter("serve_completed_total").Add(1)
}

// snapshot renders the job's state for the wire. Callers must not hold
// job.mu.
func (j *serveJob) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		Tenant:      j.tenant,
		Status:      j.status,
		Error:       j.err,
		SubmittedAt: rfc3339(j.submitted),
		StartedAt:   rfc3339(j.started),
		FinishedAt:  rfc3339(j.finished),
	}
	if j.result != nil {
		r := *j.result
		st.Result = &r
	}
	return st
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.Format(time.RFC3339Nano)
}

// handleJob polls one job; jobs of other tenants are a 404, not a 403 —
// existence is not leaked across namespaces.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if err := dfs.ValidateName(tenant); err != nil {
		serveError(w, http.StatusBadRequest, err)
		return
	}
	id := r.PathValue("id")
	s.mu.Lock()
	job := s.jobs[id]
	s.mu.Unlock()
	if job == nil || job.tenant != tenant {
		serveError(w, http.StatusNotFound, fmt.Errorf("no such job %q", id))
		return
	}
	serveJSON(w, http.StatusOK, job.snapshot())
}

// handleList returns the tenant's jobs, newest first.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if err := dfs.ValidateName(tenant); err != nil {
		serveError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	var jobs []*serveJob
	for _, j := range s.jobs {
		if j.tenant == tenant {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id > jobs[b].id })
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	serveJSON(w, http.StatusOK, out)
}
