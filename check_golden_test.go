package musketeer

// Golden tests for the workflow analyzer: each front-end has a deliberately
// broken workflow under testdata/check/ and the analyzer must report every
// defect — with severities, operator locations, and front-end provenance —
// in one run, byte-for-byte matching the .golden file. Regenerate with
//
//	go test -run TestCheckGolden -update .

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"musketeer/internal/analysis"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/check/*.golden from current analyzer output")

func checkCatalog() Catalog {
	return Catalog{
		"lineitem":   {Path: "in/lineitem", Schema: NewSchema("l_partkey:int", "l_quantity:float")},
		"purchases":  {Path: "in/purchases", Schema: NewSchema("uid:int", "region:string", "value:float")},
		"properties": {Path: "in/properties", Schema: NewSchema("id:int", "street:string", "town:string")},
		"prices":     {Path: "in/prices", Schema: NewSchema("id:int", "price:float")},
		"vertices":   {Path: "in/vertices", Schema: NewSchema("vertex:int", "vertex_value:float")},
		"edges":      {Path: "in/edges", Schema: NewSchema("src:int", "dst:int", "degree:int")},
	}
}

// compileReport compiles a workflow expected to carry analyzer errors and
// recovers the full report through the front-end error wrapping.
func compileReport(t *testing.T, err error) *Report {
	t.Helper()
	if err == nil {
		t.Fatal("compile unexpectedly succeeded; the workflow is supposed to be broken")
	}
	var aerr *analysis.Error
	if !errors.As(err, &aerr) {
		t.Fatalf("error does not wrap *analysis.Error: %v", err)
	}
	return aerr.Report
}

func TestCheckGolden(t *testing.T) {
	m := New()
	cat := checkCatalog()
	cases := []struct {
		name    string
		compile func(src string) error
	}{
		{"broken.hive", func(src string) error { _, err := m.CompileHive(src, cat); return err }},
		{"broken.beer", func(src string) error { _, err := m.CompileBEER(src, cat); return err }},
		{"broken.pig", func(src string) error { _, err := m.CompilePig(src, cat); return err }},
		{"broken.gas", func(src string) error {
			_, err := m.CompileGAS(src, cat, GASConfig{Vertices: "vertices", Edges: "edges", Output: "ranks"})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", "check", tc.name))
			if err != nil {
				t.Fatal(err)
			}
			rep := compileReport(t, tc.compile(string(src)))
			assertGolden(t, tc.name+".golden", rep)
		})
	}
}

// The Lindi front-end is programmatic, so its broken workflow is built in
// code rather than read from a file; the golden output is checked the same
// way.
func TestCheckGoldenLindi(t *testing.T) {
	m := New()
	b := NewLindiBuilder(checkCatalog())
	b.From("purchases").Select("uid", "nope").Named("x")
	b.From("properties").Select("id", "ghost").Named("y")
	b.From("vertices") // referenced but never consumed: dead input
	_, err := m.CompileLindi(b)
	rep := compileReport(t, err)
	assertGolden(t, "broken.lindi.golden", rep)
}

func assertGolden(t *testing.T, name string, rep *Report) {
	t.Helper()
	got := rep.String()
	path := filepath.Join("testdata", "check", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestCheckGolden -update .` to create it)", err)
	}
	if want := string(wantBytes); got != want {
		t.Errorf("analyzer output changed.\n--- want\n%s--- got\n%s", want, got)
	}
}

// The acceptance bar for the analyzer: a workflow with several seeded
// defects yields every one of them in a single run, each pinned to an
// operator and a front-end source line.
func TestCheckReportsAllDefectsAtOnce(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "check", "broken.hive"))
	if err != nil {
		t.Fatal(err)
	}
	_, cerr := New().CompileHive(string(src), checkCatalog())
	rep := compileReport(t, cerr)
	if n := len(rep.Errors()); n < 3 {
		t.Fatalf("want >= 3 errors in one run, got %d:\n%s", n, rep)
	}
	for _, d := range rep.Errors() {
		if d.OpID < 0 || d.Op == "" {
			t.Errorf("error lacks an operator location: %s", d)
		}
		if !strings.HasPrefix(d.Prov.String(), "hive:") {
			t.Errorf("error lacks hive line provenance: %s", d)
		}
	}
}
