package musketeer

import (
	"strings"
	"testing"

	"musketeer/internal/relation"
)

func stageProperty(t *testing.T, m *Musketeer) Catalog {
	t.Helper()
	props := relation.New("properties", NewSchema("id:int", "street:string", "town:string"))
	streets := []string{"mill rd", "high st"}
	for i := int64(0); i < 20; i++ {
		props.MustAppend(relation.Row{relation.Int(i), relation.Str(streets[i%2]), relation.Str("cam")})
	}
	props.LogicalBytes = props.PhysicalBytes() * 1000
	prices := relation.New("prices", NewSchema("id:int", "price:float"))
	for i := int64(0); i < 20; i++ {
		prices.MustAppend(relation.Row{relation.Int(i), relation.Float(float64(100 + 10*i))})
	}
	prices.LogicalBytes = prices.PhysicalBytes() * 1000
	if err := m.WriteInput("in/properties", props); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteInput("in/prices", prices); err != nil {
		t.Fatal(err)
	}
	return Catalog{
		"properties": {Path: "in/properties", Schema: props.Schema},
		"prices":     {Path: "in/prices", Schema: prices.Schema},
	}
}

const maxPriceHive = `
SELECT id, street, town FROM properties AS locs;
locs JOIN prices ON locs.id = prices.id AS id_price;
SELECT street, town, MAX(price) AS max_price FROM id_price GROUP BY street AND town AS street_price;
`

func TestEndToEndHive(t *testing.T) {
	m := New(LocalCluster(7))
	cat := stageProperty(t, m)
	wf, err := m.CompileHive(maxPriceHive, cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wf.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || len(res.Jobs) == 0 {
		t.Fatalf("result: %+v", res)
	}
	out, err := m.ReadOutput("street_price")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Errorf("rows = %d", out.NumRows())
	}
}

func TestExplicitEngineTargeting(t *testing.T) {
	for _, engine := range []string{"hadoop", "spark", "naiad", "metis", "serial"} {
		m := New(LocalCluster(7))
		cat := stageProperty(t, m)
		wf, err := m.CompileHive(maxPriceHive, cat)
		if err != nil {
			t.Fatal(err)
		}
		res, err := wf.ExecuteOn(engine)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if res.Makespan <= 0 {
			t.Errorf("%s: zero makespan", engine)
		}
		out, err := m.ReadOutput("street_price")
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if out.NumRows() != 2 {
			t.Errorf("%s: rows = %d", engine, out.NumRows())
		}
	}
}

func TestUnknownEngine(t *testing.T) {
	m := New()
	cat := stageProperty(t, m)
	wf, err := m.CompileHive(maxPriceHive, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.PlanFor("flink"); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestGeneratedCodeRendering(t *testing.T) {
	m := New(LocalCluster(7))
	cat := stageProperty(t, m)
	wf, err := m.CompileHive(maxPriceHive, cat)
	if err != nil {
		t.Fatal(err)
	}
	part, err := wf.PlanFor("spark")
	if err != nil {
		t.Fatal(err)
	}
	src, err := wf.GeneratedCode(part)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"musketeer-generated spark code", "reduceByKey"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q:\n%s", want, src)
		}
	}
}

func TestPlanModesDiffer(t *testing.T) {
	m := New(LocalCluster(7))
	cat := stageProperty(t, m)
	wf, err := m.CompileHive(maxPriceHive, cat)
	if err != nil {
		t.Fatal(err)
	}
	part, err := wf.PlanFor("spark")
	if err != nil {
		t.Fatal(err)
	}
	wf.Mode = ModeOptimized
	opt, err := wf.Run(part)
	if err != nil {
		t.Fatal(err)
	}
	wf.Mode = ModeNaive
	naive, err := wf.Run(part)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Makespan <= opt.Makespan {
		t.Errorf("naive (%v) should be slower than optimized (%v)", naive.Makespan, opt.Makespan)
	}
}

func TestUnmergedPlan(t *testing.T) {
	m := New(LocalCluster(7))
	cat := stageProperty(t, m)
	wf, err := m.CompileHive(maxPriceHive, cat)
	if err != nil {
		t.Fatal(err)
	}
	part, err := wf.PlanUnmerged("spark")
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Jobs) != 3 {
		t.Errorf("unmerged jobs = %d, want 3", len(part.Jobs))
	}
}

func TestHistoryAccumulatesAcrossRuns(t *testing.T) {
	m := New(LocalCluster(7))
	cat := stageProperty(t, m)
	wf, err := m.CompileHive(maxPriceHive, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Execute(); err != nil {
		t.Fatal(err)
	}
	if m.History().Coverage(wf.DAG().Hash()) == 0 {
		t.Error("no history after execution")
	}
}

func TestBEERAndGASFrontends(t *testing.T) {
	m := New(EC2(16))
	verts := relation.New("vertices", NewSchema("vertex:int", "vertex_value:float"))
	verts.MustAppend(relation.Row{relation.Int(1), relation.Float(1)})
	verts.MustAppend(relation.Row{relation.Int(2), relation.Float(1)})
	edges := relation.New("edges", NewSchema("src:int", "dst:int", "vertex_degree:int"))
	edges.MustAppend(relation.Row{relation.Int(1), relation.Int(2), relation.Int(1)})
	edges.MustAppend(relation.Row{relation.Int(2), relation.Int(1), relation.Int(1)})
	if err := m.WriteInput("in/v", verts); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteInput("in/e", edges); err != nil {
		t.Fatal(err)
	}
	cat := Catalog{
		"vertices": {Path: "in/v", Schema: verts.Schema},
		"edges":    {Path: "in/e", Schema: edges.Schema},
	}
	gasSrc := `
GATHER = { SUM(vertex_value) }
APPLY = { MUL [vertex_value, 0.85] SUM [vertex_value, 0.15] }
SCATTER = { DIV [vertex_value, vertex_degree] }
ITERATION_STOP = (iteration < 3)
`
	wf, err := m.CompileGAS(gasSrc, cat, GASConfig{Vertices: "vertices", Edges: "edges", Output: "pr"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Execute(); err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadOutput("pr")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Errorf("pagerank rows = %d", out.NumRows())
	}

	beerSrc := `
doubled = SUM [vertex_value, 1] FROM vertices;
`
	wf2, err := m.CompileBEER(beerSrc, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf2.Execute(); err != nil {
		t.Fatal(err)
	}
}

func TestLindiFrontend(t *testing.T) {
	m := New()
	cat := stageProperty(t, m)
	b := NewLindiBuilder(cat)
	b.From("prices").
		GroupBy(nil).Max("price", "top").Done().
		Named("top_price")
	wf, err := m.CompileLindi(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Execute(); err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadOutput("top_price")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0].F != 290 {
		t.Errorf("top price = %v", out.Rows[0])
	}
}

func TestEngineNames(t *testing.T) {
	m := New()
	names := m.EngineNames()
	if len(names) != 8 {
		t.Errorf("engines = %v", names)
	}
}

func TestPigFrontend(t *testing.T) {
	m := New(LocalCluster(7))
	cat := stageProperty(t, m)
	wf, err := m.CompilePig(`
locs = FOREACH properties GENERATE id, street, town;
j    = JOIN locs BY id, prices BY id;
g    = GROUP j BY (street, town);
best = FOREACH g GENERATE group, MAX(j.price) AS max_price;
`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Execute(); err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadOutput("best")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Errorf("best rows = %d", out.NumRows())
	}

	// The decoupling claim across a fifth front-end: Pig and Hive produce
	// identical results for the same logical workflow.
	m2 := New(LocalCluster(7))
	cat2 := stageProperty(t, m2)
	wf2, err := m2.CompileHive(maxPriceHive, cat2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf2.Execute(); err != nil {
		t.Fatal(err)
	}
	hiveOut, err := m2.ReadOutput("street_price")
	if err != nil {
		t.Fatal(err)
	}
	if hiveOut.Fingerprint() != out.Fingerprint() {
		t.Error("pig and hive disagree on the same workflow")
	}
}

func TestExplainAPI(t *testing.T) {
	m := New(LocalCluster(7))
	cat := stageProperty(t, m)
	wf, err := m.CompileHive(maxPriceHive, cat)
	if err != nil {
		t.Fatal(err)
	}
	part, err := wf.Plan()
	if err != nil {
		t.Fatal(err)
	}
	text, err := wf.Explain(part)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"engine costs:", "volumes:"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
}
