// Command mklint enforces Musketeer's source-level invariants on the
// repository's own Go code. It is a CI gate (see ci.sh), complementing the
// workflow-level analyzer in internal/analysis: that one checks user
// workflows, this one checks us.
//
// Invariants (scoped to shipped, non-test code):
//
//   - hot-path-keys: internal/exec must not build row keys with
//     fmt.Sprintf-style formatting or string concatenation; the hashed-key
//     kernels exist precisely to avoid per-row string building.
//   - determinism: internal/exec and internal/relation must not import
//     time or math/rand; kernels must be replayable, so clocks and
//     randomness are injected by callers.
//   - engine-profile: every engines.Engine composite literal must set a
//     prof: field, so no back-end enters the registry without a
//     capability/cost profile for the planner.
//   - scheduler-only-concurrency: internal/core and internal/engines must
//     not contain bare go statements; all execution-stack concurrency is
//     owned by internal/sched (Scheduler.Run / sched.ForEach), which is
//     what guarantees admission control, fail-fast cancellation, and
//     deterministic makespan accounting.
//   - span-hygiene: everywhere under internal/, a span opened with
//     StartSpan/Begin and held in a local variable must be ended in the
//     same function (deferred or direct .End()); spans handed off by
//     return or store are the recipient's responsibility. Leaked spans
//     never close, so flight-recorder traces would show phases that run
//     forever.
//
// Usage:
//
//	mklint ./...
//
// Patterns ending in /... are walked recursively from the module root;
// testdata, hidden directories, and _test.go files are skipped. Exit
// status is 1 when any finding is reported.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	findings, err := lintPatterns(".", args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mklint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mklint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// lintPatterns expands go-style ./... patterns relative to root and lints
// every matched non-test Go file. Rule scoping uses paths relative to the
// module root (the nearest parent of root containing go.mod).
func lintPatterns(root string, patterns []string) ([]Finding, error) {
	modRoot, err := findModuleRoot(root)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var files []string
	for _, pat := range patterns {
		recursive := false
		dir := pat
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			dir = strings.TrimSuffix(pat, "/...")
			if dir == "." || dir == "" {
				dir = root
			}
		}
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if path != dir && !recursive {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			abs, err := filepath.Abs(path)
			if err != nil {
				return err
			}
			if !seen[abs] {
				seen[abs] = true
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var out []Finding
	fset := token.NewFileSet()
	for _, path := range files {
		rel, err := moduleRelative(modRoot, path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		out = append(out, lintFile(fset, rel, f)...)
	}
	return out, nil
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		abs = parent
	}
}

func moduleRelative(modRoot, path string) (string, error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return "", err
	}
	return filepath.ToSlash(rel), nil
}
