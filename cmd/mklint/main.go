// Command mklint is the transitional alias of cmd/mkvet. The original
// syntactic AST linter that lived here was promoted into the type-aware
// analysis framework under internal/vet: the same invariants (and more)
// are now proven over go/types, per-function control-flow graphs, and the
// module-wide call graph instead of being pattern-matched, so aliased
// imports, transitive call chains, and branch-dependent span leaks no
// longer slip through. Existing `mklint ./...` invocations keep working
// and report identical rule names; new tooling should invoke mkvet
// directly. Exit status: 0 clean, 1 findings, 2 parse/type-check failure.
package main

import (
	"os"

	"musketeer/internal/vet"
)

func main() {
	os.Exit(vet.CLIMain("mklint", os.Args[1:], os.Stdout, os.Stderr))
}
