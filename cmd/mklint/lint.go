package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// A Finding is one invariant violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Path prefixes (slash-separated, module-relative) each rule applies to.
var (
	hotPathDirs     = []string{"internal/exec/"}
	determinismDirs = []string{"internal/exec/", "internal/relation/"}
	engineDirs      = []string{"internal/engines/"}
	concurrencyDirs = []string{"internal/core/", "internal/engines/"}
	spanDirs        = []string{"internal/"}
)

func underAny(path string, dirs []string) bool {
	for _, d := range dirs {
		if strings.HasPrefix(path, d) {
			return true
		}
	}
	return false
}

// lintFile checks one parsed file against every rule whose directory scope
// contains relpath (slash-separated, relative to the module root). Test
// files must be filtered out by the caller; the invariants govern shipped
// kernel code only.
func lintFile(fset *token.FileSet, relpath string, f *ast.File) []Finding {
	var out []Finding
	add := func(pos token.Pos, rule, format string, args ...any) {
		out = append(out, Finding{Pos: fset.Position(pos), Rule: rule, Msg: fmt.Sprintf(format, args...)})
	}

	if underAny(relpath, determinismDirs) {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch p {
			case "time", "math/rand", "math/rand/v2":
				add(imp.Pos(), "determinism",
					"import of %q: kernel code must be deterministic and clock-free (inject values from the caller)", p)
			}
		}
	}

	if underAny(relpath, spanDirs) {
		checkSpanHygiene(add, f)
	}

	hotPath := underAny(relpath, hotPathDirs)
	engines := underAny(relpath, engineDirs)
	concurrency := underAny(relpath, concurrencyDirs)
	streaming := hotPath && strings.HasPrefix(baseName(relpath), "stream")
	if !hotPath && !engines && !concurrency {
		return out
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if concurrency {
				add(n.Pos(), "scheduler-only-concurrency",
					"bare go statement: execution-stack concurrency must go through internal/sched (Scheduler.Run or sched.ForEach)")
			}
		case *ast.SelectorExpr:
			if streaming && n.Sel.Name == "Rows" && !isBatchRecv(n.X) {
				add(n.Pos(), "stream-rows",
					"streaming kernel reads .Rows of an upstream stage: pull batches through RowSource.Next instead of materializing the input")
			}
		case *ast.CallExpr:
			if !hotPath {
				return true
			}
			if name, ok := fmtStringCall(n.Fun); ok {
				add(n.Pos(), "hot-path-keys",
					"fmt.%s in exec hot path: build row keys with hashed/typed keys, not formatted strings", name)
			}
		case *ast.BinaryExpr:
			if !hotPath {
				return true
			}
			if n.Op == token.ADD && (isStringLit(n.X) || isStringLit(n.Y)) {
				add(n.Pos(), "hot-path-keys",
					"string concatenation in exec hot path: build row keys with hashed/typed keys, not string building")
			}
		case *ast.CompositeLit:
			if !engines {
				return true
			}
			if !isEngineType(n.Type) {
				return true
			}
			if !hasProfField(n) {
				add(n.Pos(), "engine-profile",
					"Engine literal without a prof: field — every engine must register a capability/cost profile")
			}
		}
		return true
	})
	return out
}

// checkSpanHygiene enforces span-hygiene: every span opened with a
// StartSpan or Begin call and held in a local variable must be closed in
// the same function — a deferred or direct .End() on that variable. A span
// that escapes the function (returned, or stored into a field, slice, map,
// or another variable) is the recipient's responsibility and is exempt.
// Each function literal is its own scope: a span opened inside a closure
// must be ended there, not by the enclosing function.
func checkSpanHygiene(add func(pos token.Pos, rule, format string, args ...any), f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				lintSpanScope(add, n.Body)
			}
		case *ast.FuncLit:
			lintSpanScope(add, n.Body)
		}
		return true
	})
}

// lintSpanScope checks one function body. Starts and escapes are collected
// from the body excluding nested function literals (each is its own
// scope); .End() calls are collected including nested literals, so
// `defer func() { sp.End() }()` counts.
func lintSpanScope(add func(pos token.Pos, rule, format string, args ...any), body *ast.BlockStmt) {
	type spanStart struct {
		pos  token.Pos
		call string
	}
	starts := map[string]spanStart{}
	escaped := map[string]bool{}
	walkScope(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i, rhs := range n.Rhs {
				if call, ok := spanCall(rhs); ok {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						if _, dup := starts[id.Name]; !dup {
							starts[id.Name] = spanStart{pos: rhs.Pos(), call: call}
						}
					}
					continue
				}
				// A tracked span copied anywhere else escapes this scope —
				// except into the blank identifier, which discards it.
				if lhs, ok := n.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
					continue
				}
				if id, ok := rhs.(*ast.Ident); ok {
					escaped[id.Name] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := res.(*ast.Ident); ok {
					escaped[id.Name] = true
				}
			}
		}
	})
	if len(starts) == 0 {
		return
	}
	ended := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			ended[id.Name] = true
		}
		return true
	})
	for name, s := range starts {
		if ended[name] || escaped[name] {
			continue
		}
		add(s.pos, "span-hygiene",
			"span %s opened by %s is never ended: add `defer %s.End()` (or return/store the span to hand off ownership)",
			name, s.call, name)
	}
}

// walkScope visits body's nodes, excluding nested function literals.
func walkScope(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// spanCall reports whether e is a <recv>.StartSpan(...) or <recv>.Begin(...)
// call (syntactic — any receiver counts, matching the obs API by name).
func spanCall(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "StartSpan", "Begin":
		return sel.Sel.Name, true
	}
	return "", false
}

// fmtStringCall reports whether fun is a call target of the form
// fmt.<string-building function>.
func fmtStringCall(fun ast.Expr) (string, bool) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "fmt" {
		return "", false
	}
	switch sel.Sel.Name {
	case "Sprintf", "Sprint", "Sprintln", "Appendf", "Append", "Appendln":
		return sel.Sel.Name, true
	}
	return "", false
}

// baseName returns the last element of a slash-separated path.
func baseName(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isBatchRecv reports whether the receiver expression is a batch local —
// an identifier named "b" or prefixed "batch". Streaming kernels may read
// the rows of the batch they are currently processing; every other .Rows
// access inside a stream file reaches into a materialized relation, which
// is exactly what streaming exists to avoid.
func isBatchRecv(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && (id.Name == "b" || strings.HasPrefix(id.Name, "batch"))
}

func isStringLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.STRING
}

// isEngineType matches the literal's type expression against Engine or
// pkg.Engine (syntactic — mklint deliberately avoids go/types so it can
// run as a dependency-free CI gate).
func isEngineType(t ast.Expr) bool {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name == "Engine"
	case *ast.SelectorExpr:
		return t.Sel.Name == "Engine"
	}
	return false
}

func hasProfField(lit *ast.CompositeLit) bool {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "prof" {
			return true
		}
	}
	return false
}
