package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// A Finding is one invariant violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Path prefixes (slash-separated, module-relative) each rule applies to.
var (
	hotPathDirs     = []string{"internal/exec/"}
	determinismDirs = []string{"internal/exec/", "internal/relation/"}
	engineDirs      = []string{"internal/engines/"}
	concurrencyDirs = []string{"internal/core/", "internal/engines/"}
)

func underAny(path string, dirs []string) bool {
	for _, d := range dirs {
		if strings.HasPrefix(path, d) {
			return true
		}
	}
	return false
}

// lintFile checks one parsed file against every rule whose directory scope
// contains relpath (slash-separated, relative to the module root). Test
// files must be filtered out by the caller; the invariants govern shipped
// kernel code only.
func lintFile(fset *token.FileSet, relpath string, f *ast.File) []Finding {
	var out []Finding
	add := func(pos token.Pos, rule, format string, args ...any) {
		out = append(out, Finding{Pos: fset.Position(pos), Rule: rule, Msg: fmt.Sprintf(format, args...)})
	}

	if underAny(relpath, determinismDirs) {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch p {
			case "time", "math/rand", "math/rand/v2":
				add(imp.Pos(), "determinism",
					"import of %q: kernel code must be deterministic and clock-free (inject values from the caller)", p)
			}
		}
	}

	hotPath := underAny(relpath, hotPathDirs)
	engines := underAny(relpath, engineDirs)
	concurrency := underAny(relpath, concurrencyDirs)
	if !hotPath && !engines && !concurrency {
		return out
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if concurrency {
				add(n.Pos(), "scheduler-only-concurrency",
					"bare go statement: execution-stack concurrency must go through internal/sched (Scheduler.Run or sched.ForEach)")
			}
		case *ast.CallExpr:
			if !hotPath {
				return true
			}
			if name, ok := fmtStringCall(n.Fun); ok {
				add(n.Pos(), "hot-path-keys",
					"fmt.%s in exec hot path: build row keys with hashed/typed keys, not formatted strings", name)
			}
		case *ast.BinaryExpr:
			if !hotPath {
				return true
			}
			if n.Op == token.ADD && (isStringLit(n.X) || isStringLit(n.Y)) {
				add(n.Pos(), "hot-path-keys",
					"string concatenation in exec hot path: build row keys with hashed/typed keys, not string building")
			}
		case *ast.CompositeLit:
			if !engines {
				return true
			}
			if !isEngineType(n.Type) {
				return true
			}
			if !hasProfField(n) {
				add(n.Pos(), "engine-profile",
					"Engine literal without a prof: field — every engine must register a capability/cost profile")
			}
		}
		return true
	})
	return out
}

// fmtStringCall reports whether fun is a call target of the form
// fmt.<string-building function>.
func fmtStringCall(fun ast.Expr) (string, bool) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "fmt" {
		return "", false
	}
	switch sel.Sel.Name {
	case "Sprintf", "Sprint", "Sprintln", "Appendf", "Append", "Appendln":
		return sel.Sel.Name, true
	}
	return "", false
}

func isStringLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.STRING
}

// isEngineType matches the literal's type expression against Engine or
// pkg.Engine (syntactic — mklint deliberately avoids go/types so it can
// run as a dependency-free CI gate).
func isEngineType(t ast.Expr) bool {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name == "Engine"
	case *ast.SelectorExpr:
		return t.Sel.Name == "Engine"
	}
	return false
}

func hasProfField(lit *ast.CompositeLit) bool {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "prof" {
			return true
		}
	}
	return false
}
