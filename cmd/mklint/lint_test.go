package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func lintSource(t *testing.T, relpath, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, relpath, src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return lintFile(fset, relpath, f)
}

// Every invariant class must fire on a seeded violation.
func TestSeededViolations(t *testing.T) {
	cases := []struct {
		name, path, src, rule string
	}{
		{
			name: "sprintf row key in exec",
			path: "internal/exec/bad.go",
			src: `package exec
import "fmt"
func key(a, b string) string { return fmt.Sprintf("%s|%s", a, b) }`,
			rule: "hot-path-keys",
		},
		{
			name: "sprint in exec",
			path: "internal/exec/bad.go",
			src: `package exec
import "fmt"
func key(v any) string { return fmt.Sprint(v) }`,
			rule: "hot-path-keys",
		},
		{
			name: "string concat row key in exec",
			path: "internal/exec/bad.go",
			src: `package exec
func key(a, b string) string { return a + "|" + b }`,
			rule: "hot-path-keys",
		},
		{
			name: "time import in exec",
			path: "internal/exec/clock.go",
			src: `package exec
import "time"
var t0 = time.Now()`,
			rule: "determinism",
		},
		{
			name: "math/rand import in exec",
			path: "internal/exec/shuffle.go",
			src: `package exec
import "math/rand"
var r = rand.Int()`,
			rule: "determinism",
		},
		{
			name: "rand v2 import in relation",
			path: "internal/relation/sample.go",
			src: `package relation
import "math/rand/v2"
var r = rand.Int()`,
			rule: "determinism",
		},
		{
			name: "engine literal without profile",
			path: "internal/engines/noprof.go",
			src: `package engines
func Mystery() *Engine { return &Engine{name: "mystery", paradigm: ParadigmGeneral} }`,
			rule: "engine-profile",
		},
		{
			name: "qualified engine literal without profile",
			path: "internal/engines/sub/noprof.go",
			src: `package sub
import "musketeer/internal/engines"
var e = engines.Engine{}`,
			rule: "engine-profile",
		},
		{
			name: "bare go statement in core",
			path: "internal/core/spawn.go",
			src: `package core
func fanOut(fns []func()) {
	for _, fn := range fns {
		go fn()
	}
}`,
			rule: "scheduler-only-concurrency",
		},
		{
			name: "bare go statement in engines",
			path: "internal/engines/spawn.go",
			src: `package engines
func fire(fn func()) { go fn() }`,
			rule: "scheduler-only-concurrency",
		},
		{
			name: "materialized rows access in streaming kernel",
			path: "internal/exec/stream_bad.go",
			src: `package exec
import "musketeer/internal/relation"
type badStage struct{ in *relation.Relation }
func (s *badStage) drain() int { return len(s.in.Rows) }`,
			rule: "stream-rows",
		},
		{
			name: "upstream relation rows in streaming helper",
			path: "internal/exec/streaming_bad.go",
			src: `package exec
import "musketeer/internal/relation"
func first(rel *relation.Relation) relation.Row { return rel.Rows[0] }`,
			rule: "stream-rows",
		},
		{
			name: "span never ended",
			path: "internal/obs/leak.go",
			src: `package obs
func leak(r *Recorder) {
	sp := r.StartSpan(nil, "work", "pipeline")
	sp.SetInt("n", 1)
}`,
			rule: "span-hygiene",
		},
		{
			name: "span ended only in enclosing scope of a closure",
			path: "internal/sched/leak.go",
			src: `package sched
import "musketeer/internal/obs"
func dispatch(r *obs.Recorder, run func(func())) {
	outer := r.StartSpan(nil, "outer", "pipeline")
	defer outer.End()
	run(func() {
		inner := r.StartSpan(outer, "inner", "job")
		_ = inner
	})
}`,
			rule: "span-hygiene",
		},
		{
			name: "Begin-style span never ended",
			path: "internal/core/leak.go",
			src: `package core
func trace(t interface{ Begin(string) interface{ End() } }) {
	sp := t.Begin("phase")
	_ = sp
}`,
			rule: "span-hygiene",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := lintSource(t, tc.path, tc.src)
			if len(got) == 0 {
				t.Fatalf("expected a finding, got none")
			}
			for _, f := range got {
				if f.Rule != tc.rule {
					t.Errorf("unexpected rule %q (want only %q): %s", f.Rule, tc.rule, f)
				}
			}
			if !strings.Contains(got[0].String(), tc.path) {
				t.Errorf("finding does not name the file: %s", got[0])
			}
		})
	}
}

// The rules are directory-scoped: the same constructs outside the governed
// packages are fine.
func TestRulesAreScoped(t *testing.T) {
	srcs := map[string]string{
		"internal/core/report.go": `package core
import ("fmt"; "time")
func banner(d time.Duration) string { return "took " + fmt.Sprint(d) }`,
		"cmd/musketeer/main.go": `package main
import "fmt"
func usage() string { return fmt.Sprintf("usage: %s", "musketeer") }`,
		"internal/sched/sched.go": `package sched
func dispatch(fn func()) { go fn() }`,
		"internal/bench/poll.go": `package bench
func poll(fn func()) { go fn() }`,
		// stream-rows governs stream* files only: materializing kernels in
		// exec may read relation rows, as may code outside exec entirely.
		"internal/exec/kernels2.go": `package exec
import "musketeer/internal/relation"
func count(rel *relation.Relation) int { return len(rel.Rows) }`,
		"internal/engines/io.go": `package engines
import "musketeer/internal/relation"
func count(rel *relation.Relation) int { return len(rel.Rows) }`,
	}
	for path, src := range srcs {
		if got := lintSource(t, path, src); len(got) != 0 {
			t.Errorf("%s: unexpected findings: %v", path, got)
		}
	}
}

// Streaming kernels may read the rows of the batch they are processing:
// idents named "b" or prefixed "batch" are the allowed receivers.
func TestStreamRowsBatchAccessClean(t *testing.T) {
	src := `package exec
import "musketeer/internal/relation"
func sum(src relation.RowSource) (int, error) {
	n := 0
	for {
		b, err := src.Next()
		if err != nil {
			return n, err
		}
		if len(b.Rows) == 0 {
			return n, nil
		}
		n += len(b.Rows)
		for _, batchRow := range b.Rows {
			_ = batchRow
		}
	}
}`
	if got := lintSource(t, "internal/exec/stream_ok.go", src); len(got) != 0 {
		t.Errorf("unexpected findings: %v", got)
	}
}

func TestCleanExecFile(t *testing.T) {
	src := `package exec
import "musketeer/internal/relation"
func ident(r *relation.Relation) *relation.Relation { return r }`
	if got := lintSource(t, "internal/exec/ok.go", src); len(got) != 0 {
		t.Errorf("unexpected findings: %v", got)
	}
}

// An Engine literal with a profile passes; map/slice literals of Engine
// type must not be mistaken for Engine literals.
func TestEngineProfilePresent(t *testing.T) {
	src := `package engines
func Ok() *Engine { return &Engine{name: "ok", prof: Profile{ProcMBps: 1}} }
var byName = map[string]*Engine{}
var all = []*Engine{Ok()}`
	if got := lintSource(t, "internal/engines/ok.go", src); len(got) != 0 {
		t.Errorf("unexpected findings: %v", got)
	}
}

// Span hygiene: deferred End, direct End, End from a deferred closure, and
// spans that escape by return or store are all fine; a span opened inside a
// closure is that closure's responsibility, not the enclosing function's.
func TestSpanHygieneClean(t *testing.T) {
	srcs := map[string]string{
		"internal/obs/ok_defer.go": `package obs
func traced(r *Recorder) {
	sp := r.StartSpan(nil, "work", "pipeline")
	defer sp.End()
}`,
		"internal/obs/ok_direct.go": `package obs
func traced(r *Recorder) {
	sp := r.StartSpan(nil, "work", "pipeline")
	sp.End()
}`,
		"internal/obs/ok_closure_end.go": `package obs
func traced(r *Recorder) {
	sp := r.StartSpan(nil, "work", "pipeline")
	defer func() { sp.End() }()
}`,
		"internal/obs/ok_returned.go": `package obs
func begin(r *Recorder) *Span {
	sp := r.StartSpan(nil, "work", "pipeline")
	return sp
}`,
		"internal/obs/ok_stored.go": `package obs
func begin(r *Recorder, slots []*Span) {
	sp := r.StartSpan(nil, "work", "pipeline")
	slots[0] = sp
}`,
		"internal/obs/ok_inner_closure.go": `package obs
func traced(r *Recorder, run func(func())) {
	run(func() {
		sp := r.StartSpan(nil, "job", "job")
		defer sp.End()
	})
}`,
		// Outside internal/ the rule does not apply.
		"cmd/tool/main.go": `package main
type rec struct{}
type span struct{}
func (rec) StartSpan(a, b string) span { return span{} }
func main() {
	sp := rec{}.StartSpan("x", "y")
	_ = sp
}`,
	}
	for path, src := range srcs {
		if got := lintSource(t, path, src); len(got) != 0 {
			t.Errorf("%s: unexpected findings: %v", path, got)
		}
	}
}

// The repository itself must be clean: this is the same gate ci.sh runs.
func TestRepositoryIsClean(t *testing.T) {
	findings, err := lintPatterns("../..", []string{"../../..."})
	if err != nil {
		t.Fatalf("lintPatterns: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
