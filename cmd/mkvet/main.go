// Command mkvet is Musketeer's type-aware static analyzer: it
// type-checks the whole module, builds per-function control-flow graphs
// and a module-wide call graph, and proves the kernel invariants the
// paper's correctness story rests on — deterministic cost estimation
// (§5.2), span hygiene on every path, context and lock discipline,
// scheduler-owned concurrency, and batch-arena ownership — plus the
// migrated mklint rules. It replaces cmd/mklint's syntactic scan (which
// remains as a thin alias during the transition).
//
// Usage:
//
//	mkvet [-json] [-rules r1,r2] [./pkg/...]
//	mkvet -list
//
// Suppress a finding with a justified marker on (or directly above) the
// offending line:
//
//	//mkvet:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory, and a suppression that stops matching anything
// becomes a finding itself. Exit status: 0 clean, 1 findings, 2 the tree
// does not parse or type-check. See DESIGN.md §12 for the invariant
// catalog and how to add a check.
package main

import (
	"os"

	"musketeer/internal/vet"
)

func main() {
	os.Exit(vet.CLIMain("mkvet", os.Args[1:], os.Stdout, os.Stderr))
}
