// Command mkbench regenerates the paper's evaluation tables and figures
// (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	mkbench            # run every experiment
//	mkbench -run fig7  # run one experiment by ID
//	mkbench -list      # list experiment IDs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"musketeer/internal/bench"
)

func main() {
	runID := flag.String("run", "", "run only the experiment with this ID (e.g. fig7)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	concurrency := flag.Int("concurrency", 0, "run the concurrent-workflow throughput benchmark with this many workflows (0 = skip; <0 = 2×GOMAXPROCS)")
	concurrencyJSON := flag.String("concurrency-json", "", "write the concurrency benchmark report to this JSON file (e.g. BENCH_concurrency.json)")
	accuracy := flag.Bool("accuracy", false, "run the estimator-accuracy benchmark (predicted vs simulated makespan per workflow)")
	accuracyJSON := flag.String("accuracy-json", "", "write the accuracy benchmark report to this JSON file (e.g. BENCH_accuracy.json)")
	accuracyRounds := flag.Int("rounds", 3, "accuracy: learning rounds sharing one history/calibration store (1 = no learning)")
	accuracyCases := flag.String("accuracy-cases", "", "accuracy: comma-separated case-name substrings to run (empty = all)")
	streaming := flag.Bool("streaming", false, "run the streaming-execution benchmark (fused vs materialized throughput, peak memory, codec sizes)")
	streamingRows := flag.Int("streaming-rows", 0, "input rows for the streaming chain benchmark (0 = default)")
	streamingJSON := flag.String("streaming-json", "", "write the streaming benchmark report to this JSON file (e.g. BENCH_streaming.json)")
	service := flag.Int("service", 0, "run the serve-mode load benchmark with this many storm sessions (0 = skip; <0 = default 240)")
	serviceTenants := flag.Int("service-tenants", 0, "service: tenant namespaces to spread the storm across (0 = default 4)")
	serviceJSON := flag.String("service-json", "", "write the service benchmark report to this JSON file (e.g. BENCH_service.json)")
	chaosBench := flag.Bool("chaos", false, "run the chaos benchmark (makespan inflation vs fault rate per engine)")
	chaosSeed := flag.Int64("chaos-seed", 7, "seed for the chaos benchmark's fault plans")
	chaosJSON := flag.String("chaos-json", "", "write the chaos benchmark report to this JSON file (e.g. BENCH_chaos.json)")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *concurrency != 0 || *concurrencyJSON != "" {
		n := *concurrency
		if n < 0 {
			n = 0 // RunConcurrency picks 2×GOMAXPROCS
		}
		rep, err := bench.RunConcurrency(context.Background(), n, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "concurrency:", err)
			os.Exit(1)
		}
		for _, r := range rep.Runs {
			fmt.Printf("concurrency %-10s %2d workflows  %8.1fms  %6.2f wf/s\n",
				r.Mode, r.Workflows, r.WallMS, r.ThroughputWFPS)
		}
		fmt.Printf("concurrency speedup: %.2fx (GOMAXPROCS=%d)\n", rep.Speedup, rep.Meta.GOMAXPROCS)
		if *concurrencyJSON != "" {
			if err := bench.WriteConcurrencyJSON(*concurrencyJSON, rep); err != nil {
				fmt.Fprintln(os.Stderr, "concurrency:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *service != 0 || *serviceJSON != "" {
		n := *service
		if n < 0 {
			n = 0 // RunService picks the default
		}
		rep, err := bench.RunService(context.Background(), n, *serviceTenants)
		if err != nil {
			fmt.Fprintln(os.Stderr, "service:", err)
			os.Exit(1)
		}
		fmt.Printf("service cold   %3d sessions  p50 %7.2fms  p99 %7.2fms\n", rep.Cold.Samples, rep.Cold.P50MS, rep.Cold.P99MS)
		fmt.Printf("service hit    %3d sessions  p50 %7.2fms  p99 %7.2fms  (converged after %d rounds)\n",
			rep.Hit.Samples, rep.Hit.P50MS, rep.Hit.P99MS, rep.ConvergenceRounds)
		fmt.Printf("service storm  %3d sessions  p50 %7.2fms  p99 %7.2fms  %6.1f wf/s  hit rate %.0f%%\n",
			rep.Storm.Samples, rep.Storm.P50MS, rep.Storm.P99MS, rep.StormThroughputWFPS, 100*rep.HitRate)
		fmt.Printf("service plan-cache speedup: %.2fx (cold p50 / hit p50)\n", rep.Speedup)
		if *serviceJSON != "" {
			if err := bench.WriteServiceJSON(*serviceJSON, rep); err != nil {
				fmt.Fprintln(os.Stderr, "service:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *accuracy || *accuracyJSON != "" {
		var filter []string
		if *accuracyCases != "" {
			filter = strings.Split(*accuracyCases, ",")
		}
		rep, err := bench.RunAccuracy(*accuracyRounds, filter)
		if err != nil {
			fmt.Fprintln(os.Stderr, "accuracy:", err)
			os.Exit(1)
		}
		for _, r := range rep.Rounds {
			fmt.Printf("accuracy round %d/%d: mean |makespan error| %.1f%%\n",
				r.Round, len(rep.Rounds), 100*r.Summary.MeanAbsMakespanError)
		}
		for _, w := range rep.Workflows {
			fmt.Printf("accuracy %-22s %s\n", w.Workflow, w)
		}
		s := rep.Summary
		fmt.Printf("accuracy summary (final round): %d workflows, %d jobs, mean makespan error %+.0f%%, mean |makespan error| %.0f%%, worst %.0f%%\n",
			s.Workflows, s.Jobs, 100*s.MeanMakespanError, 100*s.MeanAbsMakespanError, 100*s.WorstAbsMakespanError)
		if l := rep.Learning; l != nil {
			for _, f := range l.Flips {
				fmt.Printf("accuracy engine flip: %s %s: %s (%.1fs) -> %s (%.1fs) at round %d\n",
					f.Workflow, f.Job, f.From, f.BeforeActualS, f.To, f.AfterActualS, f.Round)
			}
		}
		if *accuracyJSON != "" {
			if err := bench.WriteAccuracyJSON(*accuracyJSON, rep); err != nil {
				fmt.Fprintln(os.Stderr, "accuracy:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *streaming || *streamingJSON != "" {
		rep, err := bench.RunStreaming(*streamingRows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "streaming:", err)
			os.Exit(1)
		}
		p := rep.Pipeline
		fmt.Printf("streaming pipeline  %d rows  materialized %.0f rows/s  streamed %.0f rows/s  speedup %.2fx\n",
			p.Rows, p.MaterializedRowsPerSec, p.StreamedRowsPerSec, p.Speedup)
		m := rep.Memory
		fmt.Printf("streaming memory    %s x%d  materialized peak %.1fMB  streamed peak %.1fMB  (-%.0f%%)\n",
			m.Workload, m.Iterations, float64(m.MaterializedPeakBytes)/1e6, float64(m.StreamedPeakBytes)/1e6, m.PeakReductionPct)
		c := rep.Codec
		fmt.Printf("streaming codec     %d rows  tsv %dB  columnar %dB  ratio %.2f\n",
			c.Rows, c.TSVBytes, c.ColumnarBytes, c.Ratio)
		if *streamingJSON != "" {
			if err := bench.WriteStreamingJSON(*streamingJSON, rep); err != nil {
				fmt.Fprintln(os.Stderr, "streaming:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *chaosBench || *chaosJSON != "" {
		rep, err := bench.RunChaos(*chaosSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		for _, r := range rep.Runs {
			fmt.Printf("chaos %-8s %-12s %5.0f faults/h  %8.1fs  %+6.1f%%  (%df %dckpt %dstrag %ddfs %dretry %dspec)\n",
				r.Engine, r.Mechanism, r.FaultsPerHr, r.MakespanS, r.InflationPct,
				r.Failures, r.Checkpoints, r.Stragglers, r.DFSRetries, r.JobRetries, r.Speculated)
		}
		if *chaosJSON != "" {
			if err := bench.WriteChaosJSON(*chaosJSON, rep); err != nil {
				fmt.Fprintln(os.Stderr, "chaos:", err)
				os.Exit(1)
			}
		}
		return
	}

	exps := bench.All()
	if *runID != "" {
		e, err := bench.ByID(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("   (%s generated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
