// Command mkbench regenerates the paper's evaluation tables and figures
// (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	mkbench            # run every experiment
//	mkbench -run fig7  # run one experiment by ID
//	mkbench -list      # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"musketeer/internal/bench"
)

func main() {
	runID := flag.String("run", "", "run only the experiment with this ID (e.g. fig7)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	exps := bench.All()
	if *runID != "" {
		e, err := bench.ByID(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("   (%s generated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
