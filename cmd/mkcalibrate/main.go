// Command mkcalibrate prints the engines' calibrated cost-function rate
// parameters (the paper's Table 1) and the round-trip check deriving PULL
// back from a measured job.
package main

import (
	"fmt"
	"os"

	"musketeer/internal/bench"
)

func main() {
	exp := bench.Tab1Calibration()
	table, err := exp.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	table.Fprint(os.Stdout)
}
