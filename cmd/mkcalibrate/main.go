// Command mkcalibrate inspects the cost model's calibration: the engines'
// seed rate parameters (the paper's Table 1) and, when feedback evidence
// exists, the learned rates and selectivities the calibration loop has
// converged to.
//
//	mkcalibrate                     # print the Table-1 seed calibration
//	mkcalibrate -state hist.json    # diff learned vs seed from a saved store
//	mkcalibrate -learn 3            # run 3 accuracy learning rounds in-process
//	mkcalibrate -json ...           # machine-readable report envelope
//
// -state accepts either a history file (musketeer -history; calibration is
// embedded) or a bare calibration-state file (musketeer -calibrate).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"musketeer/internal/bench"
	"musketeer/internal/core"
	"musketeer/internal/engines"
)

// rateDelta is one engine-rate parameter's seed vs learned value.
type rateDelta struct {
	Engine  string  `json:"engine"`
	Rate    string  `json:"rate"`
	Seed    float64 `json:"seed"`
	Learned float64 `json:"learned"`
	// DeltaPct is the learned value's relative change from seed, percent.
	DeltaPct float64 `json:"delta_pct"`
	Samples  int     `json:"samples"`
}

// selDelta is one operator class's seed vs learned selectivity.
type selDelta struct {
	Class    string  `json:"class"`
	Seed     float64 `json:"seed"`
	Learned  float64 `json:"learned"`
	DeltaPct float64 `json:"delta_pct"`
	Samples  int     `json:"samples"`
}

// jsonReport is the -json envelope (mkvet's report style: module, summary
// counts, then entries).
type jsonReport struct {
	Module        string                    `json:"module"`
	Version       uint64                    `json:"calibration_version"`
	RatesMoved    int                       `json:"rates_moved"`
	ClassesMoved  int                       `json:"classes_moved"`
	Rates         []rateDelta               `json:"rates,omitempty"`
	Selectivities []selDelta                `json:"selectivities,omitempty"`
	Snapshot      *core.CalibrationSnapshot `json:"snapshot,omitempty"`
}

func main() {
	statePath := flag.String("state", "", "load learned calibration state from this history or calibration-state file")
	learn := flag.Int("learn", 0, "run this many accuracy learning rounds in-process and report the resulting state")
	learnCases := flag.String("learn-cases", "tpch", "comma-separated case-name substrings for -learn (empty = all)")
	asJSON := flag.Bool("json", false, "emit the machine-readable report envelope")
	flag.Parse()

	var snap core.CalibrationSnapshot
	switch {
	case *learn > 0:
		var filter []string
		for _, p := range strings.Split(*learnCases, ",") {
			if p = strings.TrimSpace(p); p != "" {
				filter = append(filter, p)
			}
		}
		rep, err := bench.RunAccuracy(*learn, filter)
		if err != nil {
			fail("learn: %v", err)
		}
		if l := rep.Learning; l != nil && l.Calibration != nil {
			snap = *l.Calibration
		}
	case *statePath != "":
		var err error
		snap, err = loadState(*statePath)
		if err != nil {
			fail("state: %v", err)
		}
	}
	rates, sels := deltas(snap)

	if *asJSON {
		rep := jsonReport{
			Module: "musketeer", Version: snap.Version,
			RatesMoved: len(rates), ClassesMoved: len(sels),
			Rates: rates, Selectivities: sels,
		}
		if snap.Version > 0 {
			rep.Snapshot = &snap
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail("%v", err)
		}
		return
	}

	// The Table-1 seed calibration (with its round-trip check) is always
	// printed, so learned deltas appear next to their baseline.
	exp := bench.Tab1Calibration()
	table, err := exp.Run()
	if err != nil {
		fail("%v", err)
	}
	table.Fprint(os.Stdout)

	if snap.Version == 0 {
		fmt.Println("calibration: no feedback evidence (all rates at Table-1 seed)")
		return
	}
	fmt.Printf("learned calibration (version %d):\n", snap.Version)
	for _, d := range rates {
		fmt.Printf("  %-10s %-10s seed %8.1f  learned %8.1f  (%+.1f%%, %d run(s))\n",
			d.Engine, d.Rate, d.Seed, d.Learned, d.DeltaPct, d.Samples)
	}
	for _, d := range sels {
		fmt.Printf("  selectivity %-10s seed %8.3f  learned %8.3f  (%+.1f%%, %d obs)\n",
			d.Class, d.Seed, d.Learned, d.DeltaPct, d.Samples)
	}
}

// deltas flattens a snapshot into changed-rate and changed-selectivity
// rows, keeping only parameters that actually moved from seed.
func deltas(snap core.CalibrationSnapshot) ([]rateDelta, []selDelta) {
	var rates []rateDelta
	for _, ec := range snap.Engines {
		if ec.Samples == 0 {
			continue
		}
		for _, f := range rateFields(ec.Seed, ec.Learned) {
			if f.seed == 0 || f.seed == f.learned {
				continue
			}
			rates = append(rates, rateDelta{
				Engine: ec.Engine, Rate: f.name, Seed: f.seed, Learned: f.learned,
				DeltaPct: 100 * (f.learned - f.seed) / f.seed, Samples: ec.Samples,
			})
		}
	}
	var sels []selDelta
	for _, sc := range snap.Selectivities {
		if sc.Samples == 0 || sc.Seed == sc.Learned {
			continue
		}
		d := selDelta{Class: sc.Class, Seed: sc.Seed, Learned: sc.Learned, Samples: sc.Samples}
		if sc.Seed != 0 {
			d.DeltaPct = 100 * (sc.Learned - sc.Seed) / sc.Seed
		}
		sels = append(sels, d)
	}
	return rates, sels
}

type rateField struct {
	name          string
	seed, learned float64
}

func rateFields(seed, learned engines.Rates) []rateField {
	return []rateField{
		{"overhead_s", seed.OverheadS, learned.OverheadS},
		{"pull", seed.PullMBps, learned.PullMBps},
		{"load", seed.LoadMBps, learned.LoadMBps},
		{"proc", seed.ProcMBps, learned.ProcMBps},
		{"graph_proc", seed.GraphProcMBps, learned.GraphProcMBps},
		{"push", seed.PushMBps, learned.PushMBps},
		{"shuffle", seed.ShuffleMBps, learned.ShuffleMBps},
	}
}

// loadState reads learned calibration from either a history file (which
// embeds the state) or a bare calibration-state file.
func loadState(path string) (core.CalibrationSnapshot, error) {
	if h, err := core.LoadHistory(path); err == nil && h.Calibration().Version() > 0 {
		return h.Calibration().Snapshot(), nil
	}
	c := core.NewCalibration()
	if err := c.LoadFile(path); err != nil {
		return core.CalibrationSnapshot{}, err
	}
	return c.Snapshot(), nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
