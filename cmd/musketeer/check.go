package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"musketeer"
	"musketeer/internal/analysis"
	"musketeer/internal/engines"
	"musketeer/internal/relation"
)

// runCheck implements `musketeer check`: compile the workflow, run the
// multi-pass analyzer, pretty-print every diagnostic, and exit non-zero
// when any is an error. Nothing is executed and no data is staged; tables
// may be declared schema-only with -schema name=col:kind,col:kind.
func runCheck(args []string) int {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	frontend := fs.String("frontend", "hive", "front-end framework: hive, beer, pig or gas")
	workflowPath := fs.String("workflow", "", "workflow source file")
	engine := fs.String("engine", "", "check engine feasibility against this engine only (default: all standard engines)")
	matrix := fs.Bool("matrix", false, "print the engine capability matrix and exit")
	gasVertices := fs.String("gas-vertices", "vertices", "GAS front-end: vertex table name")
	gasEdges := fs.String("gas-edges", "edges", "GAS front-end: edge table name")
	gasOutput := fs.String("gas-output", "result", "GAS front-end: output relation name")
	tables := tableFlags{}
	fs.Var(tables, "table", "declare a relation from a TSV file: name=file (repeatable; schema only, no data is staged)")
	schemas := tableFlags{}
	fs.Var(schemas, "schema", "declare a relation schema inline: name=col:kind,col:kind (repeatable)")
	fs.Parse(args)

	if *matrix {
		fmt.Print(engines.CapabilityMatrix(engines.StandardEngines()))
		return 0
	}
	if *workflowPath == "" {
		fmt.Fprintln(os.Stderr, "missing -workflow")
		return 2
	}
	src, err := os.ReadFile(*workflowPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	cat := musketeer.Catalog{}
	for name, file := range tables {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "table %s: %v\n", name, err)
			return 2
		}
		rel, err := relation.DecodeBytes(name, data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "table %s: %v\n", name, err)
			return 2
		}
		cat[name] = musketeer.Table{Path: "in/" + name, Schema: rel.Schema}
	}
	for name, spec := range schemas {
		cat[name] = musketeer.Table{
			Path:   "in/" + name,
			Schema: musketeer.NewSchema(strings.Split(spec, ",")...),
		}
	}

	m := musketeer.New()
	var wf *musketeer.Workflow
	switch *frontend {
	case "hive":
		wf, err = m.CompileHive(string(src), cat)
	case "beer":
		wf, err = m.CompileBEER(string(src), cat)
	case "pig":
		wf, err = m.CompilePig(string(src), cat)
	case "gas":
		wf, err = m.CompileGAS(string(src), cat, musketeer.GASConfig{
			Vertices: *gasVertices, Edges: *gasEdges, Output: *gasOutput,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown front-end %q\n", *frontend)
		return 2
	}
	if err != nil {
		// Compilation failed. When the failure is the analyzer's, its full
		// report (warnings included) survives the front-end wrapping.
		var aerr *analysis.Error
		if errors.As(err, &aerr) {
			return printReport(*workflowPath, aerr.Report)
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", *workflowPath, err)
		return 1
	}

	var rep *musketeer.Report
	if *engine != "" {
		eng, ok := engines.Registry()[*engine]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
			return 2
		}
		rep = analysis.AnalyzeWithEngines(wf.DAG(), []*engines.Engine{eng})
	} else {
		rep = wf.Check()
	}
	return printReport(*workflowPath, rep)
}

func printReport(path string, rep *musketeer.Report) int {
	for _, d := range rep.Diags {
		fmt.Printf("%s: %s\n", path, d)
	}
	fmt.Printf("%s: %d error(s), %d warning(s)\n", path, len(rep.Errors()), len(rep.Warnings()))
	if rep.HasErrors() {
		return 1
	}
	return 0
}
