// Command musketeer compiles and executes a workflow file against staged
// relation files, on an explicitly chosen back-end or via automatic mapping.
//
// Relations are staged from files in the TSV-with-header format produced by
// Relation.Encode (see internal/relation). Example:
//
//	musketeer -frontend hive -workflow q17.hive \
//	    -table lineitem=lineitem.tsv -table part=part.tsv \
//	    -cluster ec2:100 -engine auto -show-code
//
// GAS workflows additionally need -gas-vertices / -gas-edges naming the
// vertex and edge tables.
//
// -trace writes the execution's flight recorder as Chrome trace_event JSON
// (load it at ui.perfetto.dev or chrome://tracing): one lane per concurrent
// job attempt with engine phases nested beneath, plus the compile, optimize,
// partition-search, analyze, and schedule pipeline spans.
//
// The check subcommand runs the static analyzer only — no execution — and
// pretty-prints every diagnostic (exit status 1 when any is an error):
//
//	musketeer check -frontend hive -workflow q17.hive \
//	    -schema lineitem=l_partkey:int,l_quantity:float
//
// The stats subcommand accepts the same flags as an execution, runs the
// workflow, and reports observability output instead of result rows: the
// deployment metrics registry (counters, gauges, histograms with
// bucket-derived p50/p90/p99; -json for the flat JSON dump) and the
// estimator's predicted-vs-measured accuracy.
//
// -debug-addr serves the live telemetry plane over HTTP for the life of
// the process: /metrics (Prometheus text exposition), /debug/runs (recent
// execution digests), /debug/runs/<id>/trace (Chrome trace JSON), /healthz,
// and /debug/pprof. Combine with -debug-hold to keep serving after the run
// finishes, and point `musketeer top -addr <addr>` at it for a one-shot
// view. -run-log <level> emits the structured run log (one JSON event per
// admission, dispatch, retry, fault recovery, speculation, and calibration
// update) to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"musketeer"
	"musketeer/internal/obs"
	"musketeer/internal/relation"
)

type tableFlags map[string]string

func (t tableFlags) String() string { return fmt.Sprint(map[string]string(t)) }

func (t tableFlags) Set(v string) error {
	name, file, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("expected name=file, got %q", v)
	}
	t[name] = file
	return nil
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "check":
			os.Exit(runCheck(os.Args[2:]))
		case "stats":
			os.Exit(run("stats", os.Args[2:], true))
		case "top":
			os.Exit(runTop(os.Args[2:]))
		case "serve":
			os.Exit(runServe(os.Args[2:]))
		}
	}
	os.Exit(run("musketeer", os.Args[1:], false))
}

// run is the shared execution path of the bare command and the stats
// subcommand; statsMode switches the post-run report from result rows to
// metrics and accuracy.
func run(name string, args []string, statsMode bool) int {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	frontend := fs.String("frontend", "hive", "front-end framework: hive, beer, pig or gas")
	workflowPath := fs.String("workflow", "", "workflow source file")
	engine := fs.String("engine", "auto", `back-end engine, or "auto" for automatic mapping`)
	clusterSpec := fs.String("cluster", "local:7", "deployment: local:<n> or ec2:<n>")
	showCode := fs.Bool("show-code", false, "print the generated back-end code")
	showPlan := fs.Bool("show-plan", false, "print the IR DAG and partitioning")
	explain := fs.Bool("explain", false, "print the cost model's reasoning for the chosen partitioning")
	dot := fs.Bool("dot", false, "print the IR DAG in Graphviz dot syntax and exit")
	gasVertices := fs.String("gas-vertices", "vertices", "GAS front-end: vertex table name")
	gasEdges := fs.String("gas-edges", "edges", "GAS front-end: edge table name")
	gasOutput := fs.String("gas-output", "result", "GAS front-end: output relation name")
	historyPath := fs.String("history", "", "workflow-history file: loaded before planning, saved after the run (estimator accuracy is persisted alongside as <file>.accuracy.json)")
	calibratePath := fs.String("calibrate", "", "calibration-state file: learned rates/selectivities loaded before planning, saved after the run (a -history file already carries this state inline)")
	adaptiveWhile := fs.Bool("adaptive-while", false, "let WHILE loops re-plan mid-run when an iteration diverges >2x from the estimate")
	mtbf := fs.Float64("faults-mtbf", 0, "inject worker failures with this cluster-wide MTBF (simulated seconds)")
	faultRate := fs.Float64("fault-rate", 0, "inject the full chaos plan (job crashes, worker faults, stragglers, DFS read failures) at this many expected faults per simulated hour")
	chaosSeed := fs.Int64("chaos-seed", 7, "seed for the -fault-rate chaos plan (same seed = same faults)")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline for the execution, e.g. 30s (0 = none)")
	maxConcurrent := fs.Int("max-concurrent", 0, "bound on concurrently running back-end jobs (0 = scheduler default)")
	retries := fs.Int("retries", 0, "per-job retry budget for transiently failed jobs")
	tracePath := fs.String("trace", "", "write the execution's spans as Chrome trace_event JSON to this file")
	columnar := fs.Bool("columnar-shuffles", false, "write intra-run shuffle files in the binary columnar wire format (sources and sinks stay TSV)")
	statsJSON := fs.Bool("json", false, "stats: dump the metrics registry as JSON instead of text")
	debugAddr := fs.String("debug-addr", "", "serve the debug plane (/metrics, /debug/runs, /healthz, /debug/pprof) on this address, e.g. :6060")
	debugHold := fs.Bool("debug-hold", false, "keep the -debug-addr server running after the run completes (Ctrl-C to exit)")
	runLogLevel := fs.String("run-log", "", "emit the structured run log to stderr as JSON events at this level: debug, info, warn or error")
	tables := tableFlags{}
	fs.Var(tables, "table", "stage a relation: name=file (repeatable)")
	fs.Parse(args)

	if *workflowPath == "" {
		fail("missing -workflow")
	}
	src, err := os.ReadFile(*workflowPath)
	if err != nil {
		fail("%v", err)
	}

	opts := []musketeer.Option{clusterOption(*clusterSpec)}
	if *historyPath != "" {
		h, err := musketeer.LoadHistory(*historyPath)
		if err != nil {
			fail("history: %v", err)
		}
		opts = append(opts, musketeer.WithHistory(h))
	}
	if *faultRate > 0 {
		opts = append(opts, musketeer.WithChaos(musketeer.DefaultChaos(*chaosSeed, *faultRate)))
	} else if *mtbf > 0 {
		opts = append(opts, musketeer.WithFaults(*mtbf, 1))
	}
	if *maxConcurrent > 0 {
		opts = append(opts, musketeer.WithConcurrency(*maxConcurrent))
	}
	if *retries > 0 {
		opts = append(opts, musketeer.WithRetries(*retries))
	}
	if *tracePath != "" {
		opts = append(opts, musketeer.WithTracing())
	}
	if *columnar {
		opts = append(opts, musketeer.WithColumnarShuffles())
	}
	if *adaptiveWhile {
		opts = append(opts, musketeer.WithAdaptiveWhile())
	}
	if *runLogLevel != "" {
		level, err := parseLogLevel(*runLogLevel)
		if err != nil {
			fail("%v", err)
		}
		opts = append(opts, musketeer.WithRunLog(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})))
	}
	m := musketeer.New(opts...)
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fail("debug-addr: %v", err)
		}
		srv := &http.Server{Handler: m.DebugHandler()}
		//mkvet:ignore scheduler-only-concurrency debug HTTP listener lives for the process lifetime; serving scrapes is stdlib-managed I/O, not execution-stack work
		go srv.Serve(ln)
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics /debug/runs /healthz /debug/pprof)\n", ln.Addr())
	}
	if *calibratePath != "" {
		if err := m.Calibration().LoadFile(*calibratePath); err != nil {
			fail("calibrate: %v", err)
		}
	}
	cat := musketeer.Catalog{}
	for name, file := range tables {
		data, err := os.ReadFile(file)
		if err != nil {
			fail("table %s: %v", name, err)
		}
		rel, err := relation.DecodeBytes(name, data)
		if err != nil {
			fail("table %s: %v", name, err)
		}
		path := "in/" + name
		if err := m.WriteInput(path, rel); err != nil {
			fail("table %s: %v", name, err)
		}
		cat[name] = musketeer.Table{Path: path, Schema: rel.Schema}
	}

	var wf *musketeer.Workflow
	switch *frontend {
	case "hive":
		wf, err = m.CompileHive(string(src), cat)
	case "beer":
		wf, err = m.CompileBEER(string(src), cat)
	case "pig":
		wf, err = m.CompilePig(string(src), cat)
	case "gas":
		wf, err = m.CompileGAS(string(src), cat, musketeer.GASConfig{
			Vertices: *gasVertices, Edges: *gasEdges, Output: *gasOutput,
		})
	default:
		fail("unknown front-end %q", *frontend)
	}
	if err != nil {
		fail("compile: %v", err)
	}

	if *dot {
		wf.Optimize()
		fmt.Println(wf.DAG().DOT(*workflowPath))
		return 0
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// ExecuteCtx / ExecuteOnCtx run the whole pipeline (optimize, partition
	// search, session run) so a -trace recorder sees every phase.
	var res *musketeer.Result
	if *engine == "auto" {
		res, err = wf.ExecuteCtx(ctx)
	} else {
		res, err = wf.ExecuteOnCtx(ctx, *engine)
	}
	if err != nil {
		fail("run: %v", err)
	}
	part := res.Partitioning

	if *showPlan {
		fmt.Println("IR DAG:")
		fmt.Println(wf.DAG())
		fmt.Println("partitioning:")
		fmt.Println(part)
	}
	if *explain {
		text, err := wf.Explain(part)
		if err != nil {
			fail("explain: %v", err)
		}
		fmt.Println(text)
	}
	if *showCode {
		code, err := wf.GeneratedCode(part)
		if err != nil {
			fail("codegen: %v", err)
		}
		fmt.Println(code)
	}

	fmt.Printf("executed %d job(s) on %v, simulated makespan %v\n",
		len(res.Jobs), part.Engines(), res.Makespan)
	if *historyPath != "" {
		if err := m.History().Save(*historyPath); err != nil {
			fail("history: %v", err)
		}
		// The estimator's track record persists next to the history store:
		// prior runs' records plus this one.
		accPath := *historyPath + ".accuracy.json"
		acc, err := musketeer.LoadAccuracyLog(accPath)
		if err != nil {
			fail("accuracy: %v", err)
		}
		for _, w := range m.Accuracy().Workflows() {
			acc.Record(w)
		}
		if err := acc.Save(accPath); err != nil {
			fail("accuracy: %v", err)
		}
	}
	if *calibratePath != "" {
		if err := m.Calibration().SaveFile(*calibratePath); err != nil {
			fail("calibrate: %v", err)
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail("trace: %v", err)
		}
		if err := res.Flight.WriteChromeTrace(f, musketeer.TraceOptions{}); err != nil {
			fail("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("trace: %v", err)
		}
		fmt.Printf("trace: %d span(s) written to %s\n", res.Flight.Len(), *tracePath)
	}

	defer func() {
		if *debugAddr != "" && *debugHold {
			fmt.Fprintf(os.Stderr, "holding debug server on %s; Ctrl-C to exit\n", *debugAddr)
			select {}
		}
	}()

	if statsMode {
		fmt.Println("metrics:")
		if *statsJSON {
			if err := m.Metrics().WriteJSON(os.Stdout); err != nil {
				fail("metrics: %v", err)
			}
		} else {
			if err := m.Metrics().WriteText(os.Stdout); err != nil {
				fail("metrics: %v", err)
			}
		}
		fmt.Println("estimator accuracy:")
		fmt.Printf("  %s\n", res.Accuracy)
		for _, j := range res.Accuracy.Jobs {
			fmt.Printf("  %-10s %-30s predicted %8.1fs actual %8.1fs error %+6.0f%%\n",
				j.Engine, j.Job, j.PredictedS, j.ActualS, 100*j.Error)
		}
		printCalibration(m.Calibration().Snapshot())
		if rates := obs.PhaseRates(res.Flight); len(rates) > 0 {
			fmt.Println("observed phase rates (this run):")
			for _, pr := range rates {
				line := fmt.Sprintf("  %-10s %-8s %2d span(s) %8.1fs simulated", pr.Engine, pr.Phase, pr.Samples, pr.SimSeconds)
				if pr.MBps > 0 {
					line += fmt.Sprintf("  %8.1f MB/s/node-eq", pr.MBps)
				}
				fmt.Println(line)
			}
		}
		return 0
	}

	for _, job := range res.Jobs {
		fmt.Printf("  %-10s %-30s %v\n", job.Engine, job.Job, job.Makespan)
	}
	// Print workflow outputs (sinks).
	for _, sink := range wf.DAG().Sinks() {
		out, err := m.ReadOutput(sink.Out)
		if err != nil {
			continue
		}
		fmt.Printf("output %q: %d rows", sink.Out, out.NumRows())
		limit := out.NumRows()
		if limit > 5 {
			limit = 5
		}
		for _, row := range out.Rows[:limit] {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Printf("\n  %s", strings.Join(cells, "\t"))
		}
		fmt.Println()
	}
	return 0
}

// printCalibration renders the learned-rate summary of the stats
// subcommand: every engine rate and operator-class selectivity that has
// accumulated feedback evidence, against its Table-1 / first-run seed.
func printCalibration(snap musketeer.CalibrationSnapshot) {
	if snap.Version == 0 {
		return
	}
	fmt.Printf("calibration (version %d):\n", snap.Version)
	for _, ec := range snap.Engines {
		if ec.Samples == 0 {
			continue
		}
		fmt.Printf("  %-10s %d run(s):", ec.Engine, ec.Samples)
		for _, f := range [...]struct {
			name         string
			seed, learnt float64
		}{
			{"overhead_s", ec.Seed.OverheadS, ec.Learned.OverheadS},
			{"pull", ec.Seed.PullMBps, ec.Learned.PullMBps},
			{"load", ec.Seed.LoadMBps, ec.Learned.LoadMBps},
			{"proc", ec.Seed.ProcMBps, ec.Learned.ProcMBps},
			{"graph_proc", ec.Seed.GraphProcMBps, ec.Learned.GraphProcMBps},
			{"push", ec.Seed.PushMBps, ec.Learned.PushMBps},
			{"shuffle", ec.Seed.ShuffleMBps, ec.Learned.ShuffleMBps},
		} {
			if f.seed == 0 && f.learnt == 0 {
				continue
			}
			fmt.Printf(" %s=%.1f->%.1f", f.name, f.seed, f.learnt)
		}
		fmt.Println()
	}
	for _, sc := range snap.Selectivities {
		if sc.Samples == 0 {
			continue
		}
		fmt.Printf("  selectivity %-10s %d obs: %.3f->%.3f\n", sc.Class, sc.Samples, sc.Seed, sc.Learned)
	}
}

// parseLogLevel maps a -run-log flag value onto a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -run-log level %q (want debug, info, warn or error)", s)
}

func clusterOption(spec string) musketeer.Option {
	kind, nStr, ok := strings.Cut(spec, ":")
	n := 7
	if ok {
		if v, err := strconv.Atoi(nStr); err == nil {
			n = v
		}
	}
	if kind == "ec2" {
		return musketeer.EC2(n)
	}
	return musketeer.LocalCluster(n)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
