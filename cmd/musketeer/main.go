// Command musketeer compiles and executes a workflow file against staged
// relation files, on an explicitly chosen back-end or via automatic mapping.
//
// Relations are staged from files in the TSV-with-header format produced by
// Relation.Encode (see internal/relation). Example:
//
//	musketeer -frontend hive -workflow q17.hive \
//	    -table lineitem=lineitem.tsv -table part=part.tsv \
//	    -cluster ec2:100 -engine auto -show-code
//
// GAS workflows additionally need -gas-vertices / -gas-edges naming the
// vertex and edge tables.
//
// The check subcommand runs the static analyzer only — no execution — and
// pretty-prints every diagnostic (exit status 1 when any is an error):
//
//	musketeer check -frontend hive -workflow q17.hive \
//	    -schema lineitem=l_partkey:int,l_quantity:float
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"musketeer"
	"musketeer/internal/relation"
)

type tableFlags map[string]string

func (t tableFlags) String() string { return fmt.Sprint(map[string]string(t)) }

func (t tableFlags) Set(v string) error {
	name, file, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("expected name=file, got %q", v)
	}
	t[name] = file
	return nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "check" {
		os.Exit(runCheck(os.Args[2:]))
	}
	frontend := flag.String("frontend", "hive", "front-end framework: hive, beer, pig or gas")
	workflowPath := flag.String("workflow", "", "workflow source file")
	engine := flag.String("engine", "auto", `back-end engine, or "auto" for automatic mapping`)
	clusterSpec := flag.String("cluster", "local:7", "deployment: local:<n> or ec2:<n>")
	showCode := flag.Bool("show-code", false, "print the generated back-end code")
	showPlan := flag.Bool("show-plan", false, "print the IR DAG and partitioning")
	explain := flag.Bool("explain", false, "print the cost model's reasoning for the chosen partitioning")
	dot := flag.Bool("dot", false, "print the IR DAG in Graphviz dot syntax and exit")
	gasVertices := flag.String("gas-vertices", "vertices", "GAS front-end: vertex table name")
	gasEdges := flag.String("gas-edges", "edges", "GAS front-end: edge table name")
	gasOutput := flag.String("gas-output", "result", "GAS front-end: output relation name")
	historyPath := flag.String("history", "", "workflow-history file: loaded before planning, saved after the run")
	mtbf := flag.Float64("faults-mtbf", 0, "inject worker failures with this cluster-wide MTBF (simulated seconds)")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for the execution, e.g. 30s (0 = none)")
	maxConcurrent := flag.Int("max-concurrent", 0, "bound on concurrently running back-end jobs (0 = scheduler default)")
	retries := flag.Int("retries", 0, "per-job retry budget for transiently failed jobs")
	tables := tableFlags{}
	flag.Var(tables, "table", "stage a relation: name=file (repeatable)")
	flag.Parse()

	if *workflowPath == "" {
		fail("missing -workflow")
	}
	src, err := os.ReadFile(*workflowPath)
	if err != nil {
		fail("%v", err)
	}

	opts := []musketeer.Option{clusterOption(*clusterSpec)}
	if *historyPath != "" {
		h, err := musketeer.LoadHistory(*historyPath)
		if err != nil {
			fail("history: %v", err)
		}
		opts = append(opts, musketeer.WithHistory(h))
	}
	if *mtbf > 0 {
		opts = append(opts, musketeer.WithFaults(*mtbf, 1))
	}
	if *maxConcurrent > 0 {
		opts = append(opts, musketeer.WithConcurrency(*maxConcurrent))
	}
	if *retries > 0 {
		opts = append(opts, musketeer.WithRetries(*retries))
	}
	m := musketeer.New(opts...)
	cat := musketeer.Catalog{}
	for name, file := range tables {
		data, err := os.ReadFile(file)
		if err != nil {
			fail("table %s: %v", name, err)
		}
		rel, err := relation.DecodeBytes(name, data)
		if err != nil {
			fail("table %s: %v", name, err)
		}
		path := "in/" + name
		if err := m.WriteInput(path, rel); err != nil {
			fail("table %s: %v", name, err)
		}
		cat[name] = musketeer.Table{Path: path, Schema: rel.Schema}
	}

	var wf *musketeer.Workflow
	switch *frontend {
	case "hive":
		wf, err = m.CompileHive(string(src), cat)
	case "beer":
		wf, err = m.CompileBEER(string(src), cat)
	case "pig":
		wf, err = m.CompilePig(string(src), cat)
	case "gas":
		wf, err = m.CompileGAS(string(src), cat, musketeer.GASConfig{
			Vertices: *gasVertices, Edges: *gasEdges, Output: *gasOutput,
		})
	default:
		fail("unknown front-end %q", *frontend)
	}
	if err != nil {
		fail("compile: %v", err)
	}

	wf.Optimize()
	if *dot {
		fmt.Println(wf.DAG().DOT(*workflowPath))
		return
	}
	var part *musketeer.Partitioning
	if *engine == "auto" {
		part, err = wf.Plan()
	} else {
		part, err = wf.PlanFor(*engine)
	}
	if err != nil {
		fail("plan: %v", err)
	}
	if *showPlan {
		fmt.Println("IR DAG:")
		fmt.Println(wf.DAG())
		fmt.Println("partitioning:")
		fmt.Println(part)
	}
	if *explain {
		text, err := wf.Explain(part)
		if err != nil {
			fail("explain: %v", err)
		}
		fmt.Println(text)
	}
	if *showCode {
		code, err := wf.GeneratedCode(part)
		if err != nil {
			fail("codegen: %v", err)
		}
		fmt.Println(code)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := wf.RunCtx(ctx, part)
	if err != nil {
		fail("run: %v", err)
	}
	fmt.Printf("executed %d job(s) on %v, simulated makespan %v\n",
		len(res.Jobs), part.Engines(), res.Makespan)
	if *historyPath != "" {
		if err := m.History().Save(*historyPath); err != nil {
			fail("history: %v", err)
		}
	}
	for _, job := range res.Jobs {
		fmt.Printf("  %-10s %-30s %v\n", job.Engine, job.Job, job.Makespan)
	}
	// Print workflow outputs (sinks).
	for _, sink := range wf.DAG().Sinks() {
		out, err := m.ReadOutput(sink.Out)
		if err != nil {
			continue
		}
		fmt.Printf("output %q: %d rows", sink.Out, out.NumRows())
		limit := out.NumRows()
		if limit > 5 {
			limit = 5
		}
		for _, row := range out.Rows[:limit] {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Printf("\n  %s", strings.Join(cells, "\t"))
		}
		fmt.Println()
	}
}

func clusterOption(spec string) musketeer.Option {
	kind, nStr, ok := strings.Cut(spec, ":")
	n := 7
	if ok {
		if v, err := strconv.Atoi(nStr); err == nil {
			n = v
		}
	}
	if kind == "ec2" {
		return musketeer.EC2(n)
	}
	return musketeer.LocalCluster(n)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
