// The serve subcommand runs one deployment as a long-lived multi-tenant
// service: workflows arrive over HTTP/JSON, are admitted through per-tenant
// fair queueing, and repeated submissions replay cached plans.
//
//	musketeer serve -addr :8080 -cluster ec2:16 -plan-cache 256
//
//	# stage a relation for tenant "acme"
//	curl -X POST --data-binary @edges.tsv \
//	    'localhost:8080/api/v1/tenants/acme/inputs/in/edges?logical_bytes=1000000000'
//
//	# submit a workflow
//	curl -X POST -d '{"frontend":"hive","source":"...","catalog":{"edges":{"path":"in/edges","schema":["src:int","dst:int"]}}}' \
//	    localhost:8080/api/v1/tenants/acme/jobs
//
//	# poll, then fetch
//	curl localhost:8080/api/v1/tenants/acme/jobs/j-1
//	curl localhost:8080/api/v1/tenants/acme/outputs/result
//
// The debug plane (/metrics, /debug/runs, /healthz, /debug/pprof) is served
// from the same listener.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"musketeer"
)

// runServe starts the service plane and blocks for the process lifetime.
func runServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address for the service and debug planes")
	clusterSpec := fs.String("cluster", "local:7", "deployment: local:<n> or ec2:<n>")
	planCache := fs.Int("plan-cache", 128, "canonicalized-DAG plan cache capacity (0 disables)")
	workers := fs.Int("workers", 4, "concurrently executing submissions across all tenants")
	maxQueued := fs.Int("max-queued", 64, "per-tenant bound on waiting submissions (beyond it: 429)")
	maxInFlight := fs.Int("max-in-flight", 0, "per-tenant bound on running submissions (0 = workers)")
	weights := fs.String("weights", "", "comma-separated tenant dispatch weights, e.g. gold=4,silver=2")
	trace := fs.Bool("trace", true, "record flight-recorder spans (served at /debug/runs/<id>/trace)")
	retries := fs.Int("retries", 0, "per-job retry budget for transiently failed jobs")
	runLogLevel := fs.String("run-log", "", "emit the structured run log to stderr as JSON events at this level: debug, info, warn or error")
	fs.Parse(args)

	opts := []musketeer.Option{clusterOption(*clusterSpec), musketeer.WithPlanCache(*planCache)}
	if *trace {
		opts = append(opts, musketeer.WithTracing())
	}
	if *retries > 0 {
		opts = append(opts, musketeer.WithRetries(*retries))
	}
	if *runLogLevel != "" {
		level, err := parseLogLevel(*runLogLevel)
		if err != nil {
			fail("%v", err)
		}
		opts = append(opts, musketeer.WithRunLog(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})))
	}
	m := musketeer.New(opts...)

	wmap, err := parseWeights(*weights)
	if err != nil {
		fail("%v", err)
	}
	srv := m.NewServer(musketeer.ServeOptions{
		Workers:     *workers,
		MaxQueued:   *maxQueued,
		MaxInFlight: *maxInFlight,
		Weights:     wmap,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("serve: %v", err)
	}
	fmt.Fprintf(os.Stderr, "musketeer service on http://%s (/api/v1/tenants/... ; debug: /metrics /debug/runs /healthz)\n", ln.Addr())
	if err := (&http.Server{Handler: srv}).Serve(ln); err != nil {
		fail("serve: %v", err)
	}
	return 0
}

// parseWeights parses "a=2,b=4" into a weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, pair := range strings.Split(s, ",") {
		name, wStr, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad -weights entry %q (want tenant=weight)", pair)
		}
		w, err := strconv.Atoi(wStr)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -weights weight %q for tenant %q", wStr, name)
		}
		out[name] = w
	}
	return out, nil
}
