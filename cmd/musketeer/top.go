package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"musketeer"
)

// runTop is the `musketeer top` subcommand: a one-shot view of a running
// deployment's debug server — the retained execution digests from
// /debug/runs and the headline counters from /metrics — for the operator
// who wants "what has this process been doing" without wiring up a
// Prometheus stack.
func runTop(args []string) int {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "localhost:6060", "debug server address (host:port, as passed to -debug-addr)")
	jsonOut := fs.Bool("json", false, "dump the raw /debug/runs JSON instead of the table")
	fs.Parse(args)

	client := &http.Client{Timeout: 5 * time.Second}
	base := "http://" + *addr

	resp, err := client.Get(base + "/debug/runs")
	if err != nil {
		fail("top: %v (is the deployment running with -debug-addr %s?)", err, *addr)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("top: %s/debug/runs: %s", base, resp.Status)
	}
	var list struct {
		Runs []musketeer.RunDigest `json:"runs"`
	}
	dec := json.NewDecoder(resp.Body)
	if *jsonOut {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			fail("top: %v", err)
		}
		fmt.Println(string(raw))
		return 0
	}
	if err := dec.Decode(&list); err != nil {
		fail("top: %v", err)
	}

	if len(list.Runs) == 0 {
		fmt.Println("no retained runs")
	} else {
		fmt.Printf("%-6s %-24s %-7s %9s %10s %10s %7s %7s %s\n",
			"RUN", "WORKFLOW", "STATUS", "WALL", "MAKESPAN", "PREDICTED", "ERR%", "FAULTS", "TRACE")
		for _, r := range list.Runs {
			name := r.Workflow
			if len(name) > 24 {
				name = name[:21] + "..."
			}
			trace := "-"
			if r.Traced {
				trace = fmt.Sprintf("%d spans", r.Spans)
			}
			fmt.Printf("%-6s %-24s %-7s %8.0fms %9.1fs %9.1fs %+6.0f%% %7d %s\n",
				r.ID, name, r.Status, r.WallMS, r.MakespanS, r.PredictedS,
				100*r.MakespanError, r.Faults, trace)
		}
	}

	counters, err := scrapeCounters(client, base+"/metrics")
	if err != nil {
		fail("top: %v", err)
	}
	if len(counters) > 0 {
		fmt.Println("counters:")
		names := make([]string, 0, len(counters))
		for n := range counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-44s %s\n", n, counters[n])
		}
	}
	return 0
}

// scrapeCounters pulls the plain (unlabelled, non-histogram) samples out of
// one /metrics exposition.
func scrapeCounters(client *http.Client, url string) (map[string]string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := map[string]string{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || strings.HasSuffix(name, "_bucket") || strings.HasSuffix(name, "_sum") {
			continue
		}
		out[name] = val
	}
	return out, sc.Err()
}
