// Command mkbenchgate is the CI benchmark-regression gate: it compares a
// fresh benchmark run against the committed baseline artifacts and exits
// non-zero naming every benchmark that regressed beyond the threshold.
//
// Kernel gate — fresh `go test -bench` output vs BENCH_kernels.json's
// "after" measurements (time within threshold, allocations within threshold
// plus half an alloc so zero-alloc paths stay zero-alloc):
//
//	go test -bench 'Kernel|RowKey|SortRows|EncodeDecode' -benchmem \
//	    ./internal/exec ./internal/relation | mkbenchgate -kernels BENCH_kernels.json -bench -
//
// Concurrency gate — fresh `mkbench -concurrency-json` report vs
// BENCH_concurrency.json (the concurrent-vs-serial speedup ratio must not
// fall more than the threshold below the baseline):
//
//	mkbench -concurrency 2 -concurrency-json /tmp/fresh.json
//	mkbenchgate -concurrency BENCH_concurrency.json -fresh-concurrency /tmp/fresh.json
//
// Accuracy gate — fresh `mkbench -accuracy` multi-round report vs
// BENCH_accuracy.json (the calibration loop must still converge, and no
// workflow's final-round |makespan error| may exceed the baseline's beyond
// the threshold):
//
//	mkbench -accuracy -rounds 3 -accuracy-json /tmp/fresh.json
//	mkbenchgate -accuracy BENCH_accuracy.json -fresh-accuracy /tmp/fresh.json
//
// Service gate — fresh `mkbench -service` report vs BENCH_service.json
// (the plan-cache speedup and storm hit rate must not fall below baseline
// beyond the threshold; the hit and storm p99 latencies must not blow past
// it plus absolute slack):
//
//	mkbench -service -1 -service-json /tmp/fresh.json
//	mkbenchgate -service BENCH_service.json -fresh-service /tmp/fresh.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	kernels := flag.String("kernels", "", "committed kernel baseline (BENCH_kernels.json)")
	benchOut := flag.String("bench", "", `fresh "go test -bench -benchmem" output file ("-" = stdin)`)
	concurrency := flag.String("concurrency", "", "committed concurrency baseline (BENCH_concurrency.json)")
	freshConcurrency := flag.String("fresh-concurrency", "", "fresh concurrency report (mkbench -concurrency-json)")
	accuracy := flag.String("accuracy", "", "committed accuracy baseline (BENCH_accuracy.json)")
	freshAccuracy := flag.String("fresh-accuracy", "", "fresh accuracy report (mkbench -accuracy-json)")
	service := flag.String("service", "", "committed service baseline (BENCH_service.json)")
	freshService := flag.String("fresh-service", "", "fresh service report (mkbench -service-json)")
	threshold := flag.Float64("threshold", 25, "allowed regression in percent")
	flag.Parse()

	th := *threshold / 100
	ran := false
	var regs []Regression

	if *kernels != "" || *benchOut != "" {
		if *kernels == "" || *benchOut == "" {
			fail("kernel gate needs both -kernels and -bench")
		}
		baseline, err := LoadKernelBaseline(*kernels)
		if err != nil {
			fail("%v", err)
		}
		var in io.Reader = os.Stdin
		if *benchOut != "-" {
			f, err := os.Open(*benchOut)
			if err != nil {
				fail("%v", err)
			}
			defer f.Close()
			in = f
		}
		fresh, err := ParseGoBench(in)
		if err != nil {
			fail("parse bench output: %v", err)
		}
		if len(fresh) == 0 {
			fail("no benchmark lines in %s", *benchOut)
		}
		kregs, checked, missing := CompareKernels(fresh, baseline, th)
		fmt.Printf("kernel gate: %d benchmark(s) checked against %s (%d baseline entr%s not in this run), threshold %.0f%%\n",
			checked, *kernels, missing, plural(missing, "y", "ies"), *threshold)
		regs = append(regs, kregs...)
		ran = true
	}

	if *concurrency != "" || *freshConcurrency != "" {
		if *concurrency == "" || *freshConcurrency == "" {
			fail("concurrency gate needs both -concurrency and -fresh-concurrency")
		}
		base, err := loadConcurrencyReport(*concurrency)
		if err != nil {
			fail("%v", err)
		}
		fresh, err := loadConcurrencyReport(*freshConcurrency)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("concurrency gate: fresh speedup %.2fx vs baseline %.2fx, threshold %.0f%%\n",
			fresh.Speedup, base.Speedup, *threshold)
		regs = append(regs, CompareConcurrency(fresh, base, th)...)
		ran = true
	}

	if *accuracy != "" || *freshAccuracy != "" {
		if *accuracy == "" || *freshAccuracy == "" {
			fail("accuracy gate needs both -accuracy and -fresh-accuracy")
		}
		base, err := loadAccuracyReport(*accuracy)
		if err != nil {
			fail("%v", err)
		}
		fresh, err := loadAccuracyReport(*freshAccuracy)
		if err != nil {
			fail("%v", err)
		}
		rounds := 1
		if fresh.Learning != nil {
			rounds = fresh.Learning.Rounds
		}
		fmt.Printf("accuracy gate: %d workflow(s) over %d round(s), fresh final mean |error| %.1f%% vs baseline %.1f%%, threshold %.0f%%\n",
			len(fresh.Workflows), rounds, 100*fresh.Summary.MeanAbsMakespanError, 100*base.Summary.MeanAbsMakespanError, *threshold)
		regs = append(regs, CompareAccuracy(fresh, base, th)...)
		ran = true
	}

	if *service != "" || *freshService != "" {
		if *service == "" || *freshService == "" {
			fail("service gate needs both -service and -fresh-service")
		}
		base, err := loadServiceReport(*service)
		if err != nil {
			fail("%v", err)
		}
		fresh, err := loadServiceReport(*freshService)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("service gate: fresh speedup %.2fx / hit rate %.0f%% / storm p99 %.0fms vs baseline %.2fx / %.0f%% / %.0fms, threshold %.0f%%\n",
			fresh.Speedup, 100*fresh.HitRate, fresh.Storm.P99MS,
			base.Speedup, 100*base.HitRate, base.Storm.P99MS, *threshold)
		regs = append(regs, CompareService(fresh, base, th)...)
		ran = true
	}

	if !ran {
		fail("nothing to gate: pass -kernels/-bench, -concurrency/-fresh-concurrency, -accuracy/-fresh-accuracy and/or -service/-fresh-service")
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, r)
		}
		os.Exit(1)
	}
	fmt.Println("benchmark gate: ok")
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mkbenchgate: "+format+"\n", args...)
	os.Exit(1)
}
