package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"

	"musketeer/internal/bench"
)

// Measurement is one benchmark's fresh or baseline numbers.
type Measurement struct {
	NsOp      float64
	AllocsOp  float64
	HasAllocs bool
	BytesOp   float64
	HasBytes  bool
}

// Regression is one benchmark metric that exceeded its allowance.
type Regression struct {
	Name     string
	Metric   string // "ns/op", "allocs/op", "B/op" or "speedup"
	Fresh    float64
	Baseline float64
	Allowed  float64
}

func (r Regression) String() string {
	return fmt.Sprintf("REGRESSION %s %s: fresh %.4g vs baseline %.4g (allowed %.4g)",
		r.Name, r.Metric, r.Fresh, r.Baseline, r.Allowed)
}

// gomaxprocsSuffix is the `-N` GOMAXPROCS suffix go test appends to
// benchmark names; stripped so fresh runs compare across core counts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// ParseGoBench reads `go test -bench -benchmem` output and returns the
// measurements keyed by benchmark name (GOMAXPROCS suffix stripped). With
// -count=N the best measurement wins: gating on the minimum filters the
// scheduling noise of a loaded CI host, while a real regression slows every
// repetition.
func ParseGoBench(r io.Reader) (map[string]Measurement, error) {
	out := map[string]Measurement{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		m := Measurement{}
		seen := false
		for i := 2; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "ns/op":
				m.NsOp, seen = v, true
			case "allocs/op":
				m.AllocsOp, m.HasAllocs = v, true
			case "B/op":
				m.BytesOp, m.HasBytes = v, true
			}
		}
		if !seen {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		if prev, ok := out[name]; ok {
			if prev.NsOp < m.NsOp {
				m.NsOp = prev.NsOp
			}
			if prev.HasAllocs && prev.AllocsOp < m.AllocsOp {
				m.AllocsOp = prev.AllocsOp
			}
			m.HasAllocs = m.HasAllocs || prev.HasAllocs
			if prev.HasBytes && prev.BytesOp < m.BytesOp {
				m.BytesOp = prev.BytesOp
			}
			m.HasBytes = m.HasBytes || prev.HasBytes
		}
		out[name] = m
	}
	return out, sc.Err()
}

// LoadKernelBaseline walks a BENCH_kernels.json-shaped file: any nested
// object keyed by a Benchmark* name whose value carries an "after"
// measurement becomes a baseline entry. Non-benchmark entries (notes,
// wall-clock figures) are ignored.
type afterEntry struct {
	After *struct {
		NsOp     float64  `json:"ns_op"`
		AllocsOp float64  `json:"allocs_op"`
		BytesOp  *float64 `json:"bytes_op"`
	} `json:"after"`
}

func LoadKernelBaseline(path string) (map[string]Measurement, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]Measurement{}
	for _, raw := range top {
		var group map[string]json.RawMessage
		if json.Unmarshal(raw, &group) != nil {
			continue
		}
		for name, entry := range group {
			if !strings.HasPrefix(name, "Benchmark") {
				continue
			}
			var e afterEntry
			if json.Unmarshal(entry, &e) != nil || e.After == nil {
				continue
			}
			m := Measurement{NsOp: e.After.NsOp, AllocsOp: e.After.AllocsOp, HasAllocs: true}
			if e.After.BytesOp != nil {
				m.BytesOp, m.HasBytes = *e.After.BytesOp, true
			}
			out[name] = m
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no Benchmark* entries with an \"after\" measurement", path)
	}
	return out, nil
}

// CompareKernels checks every baseline benchmark present in the fresh run.
// threshold is fractional (0.25 = 25%). Time may drift up to the threshold;
// allocations get the same relative allowance plus half an allocation, so
// a zero-alloc baseline fails on the first fresh allocation. Heap bytes per
// op (B/op), where the baseline records them, get the relative allowance
// plus 64 bytes of slack — pinning the streaming pipelines' steady-state
// memory without tripping on size-class rounding.
func CompareKernels(fresh, baseline map[string]Measurement, threshold float64) (regs []Regression, checked, missing int) {
	for name, base := range baseline {
		f, ok := fresh[name]
		if !ok {
			missing++
			continue
		}
		checked++
		if allowed := base.NsOp * (1 + threshold); f.NsOp > allowed {
			regs = append(regs, Regression{Name: name, Metric: "ns/op", Fresh: f.NsOp, Baseline: base.NsOp, Allowed: allowed})
		}
		if base.HasAllocs && f.HasAllocs {
			if allowed := base.AllocsOp*(1+threshold) + 0.5; f.AllocsOp > allowed {
				regs = append(regs, Regression{Name: name, Metric: "allocs/op", Fresh: f.AllocsOp, Baseline: base.AllocsOp, Allowed: allowed})
			}
		}
		if base.HasBytes && f.HasBytes {
			if allowed := base.BytesOp*(1+threshold) + 64; f.BytesOp > allowed {
				regs = append(regs, Regression{Name: name, Metric: "B/op", Fresh: f.BytesOp, Baseline: base.BytesOp, Allowed: allowed})
			}
		}
	}
	return regs, checked, missing
}

// CompareConcurrency gates the concurrent-vs-serial speedup: wall-clock
// throughput is machine-dependent, but the speedup ratio must not fall more
// than the threshold below the committed baseline.
func CompareConcurrency(fresh, baseline *bench.ConcurrencyReport, threshold float64) []Regression {
	allowed := baseline.Speedup * (1 - threshold)
	if fresh.Speedup < allowed {
		return []Regression{{
			Name: "concurrency", Metric: "speedup",
			Fresh: fresh.Speedup, Baseline: baseline.Speedup, Allowed: allowed,
		}}
	}
	return nil
}

func loadConcurrencyReport(path string) (*bench.ConcurrencyReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.ConcurrencyReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// CompareAccuracy gates the estimator's calibration loop. Two checks:
// the fresh multi-round run must still converge (final-round mean
// |makespan error| strictly below round 1's — learning that stops helping
// is a regression even if absolute error looks fine), and each fresh
// final-round workflow's |makespan error| must not exceed the committed
// baseline's by more than the relative threshold plus two percentage
// points of absolute slack (errors near zero would otherwise make any
// relative allowance vanishingly strict). Workflows are matched by name so
// a gate run over a case subset compares only what it ran.
func CompareAccuracy(fresh, baseline *bench.AccuracyReport, threshold float64) []Regression {
	var regs []Regression
	if l := fresh.Learning; l != nil && len(l.MeanAbsErrorByRound) > 1 {
		first := l.MeanAbsErrorByRound[0]
		final := l.MeanAbsErrorByRound[len(l.MeanAbsErrorByRound)-1]
		if final >= first {
			regs = append(regs, Regression{
				Name: "accuracy/convergence", Metric: "mean |error|",
				Fresh: final, Baseline: first, Allowed: first,
			})
		}
	}
	base := map[string]float64{}
	for _, w := range baseline.Workflows {
		base[w.Workflow] = abs(w.MakespanError)
	}
	for _, w := range fresh.Workflows {
		b, ok := base[w.Workflow]
		if !ok {
			continue
		}
		if allowed := b*(1+threshold) + 0.02; abs(w.MakespanError) > allowed {
			regs = append(regs, Regression{
				Name: "accuracy/" + w.Workflow, Metric: "|makespan error|",
				Fresh: abs(w.MakespanError), Baseline: b, Allowed: allowed,
			})
		}
	}
	return regs
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func loadAccuracyReport(path string) (*bench.AccuracyReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.AccuracyReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// CompareService gates the serve-mode plane (mkbench -service). The
// plan-cache speedup (cold p50 / hit p50) and the storm's hit rate are
// ratios, machine-comparable, and must not fall more than the threshold
// below baseline (the hit rate also gets two percentage points of absolute
// slack). Latency p99s are wall-clock and noisier: the unloaded hit p99
// gets the relative threshold plus 50ms of absolute slack, and the storm
// p99 — dominated by queueing behind hundreds of concurrent sessions on a
// shared CI host — gets a deliberately generous 250ms.
func CompareService(fresh, baseline *bench.ServiceReport, threshold float64) []Regression {
	var regs []Regression
	if allowed := baseline.Speedup * (1 - threshold); fresh.Speedup < allowed {
		regs = append(regs, Regression{
			Name: "service", Metric: "plan-cache speedup",
			Fresh: fresh.Speedup, Baseline: baseline.Speedup, Allowed: allowed,
		})
	}
	if allowed := baseline.HitRate*(1-threshold) - 0.02; fresh.HitRate < allowed {
		regs = append(regs, Regression{
			Name: "service", Metric: "hit rate",
			Fresh: fresh.HitRate, Baseline: baseline.HitRate, Allowed: allowed,
		})
	}
	if allowed := baseline.Hit.P99MS*(1+threshold) + 50; fresh.Hit.P99MS > allowed {
		regs = append(regs, Regression{
			Name: "service", Metric: "hit p99 ms",
			Fresh: fresh.Hit.P99MS, Baseline: baseline.Hit.P99MS, Allowed: allowed,
		})
	}
	if allowed := baseline.Storm.P99MS*(1+threshold) + 250; fresh.Storm.P99MS > allowed {
		regs = append(regs, Regression{
			Name: "service", Metric: "storm p99 ms",
			Fresh: fresh.Storm.P99MS, Baseline: baseline.Storm.P99MS, Allowed: allowed,
		})
	}
	return regs
}

func loadServiceReport(path string) (*bench.ServiceReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.ServiceReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func loadStreamingReport(path string) (*bench.StreamingReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.StreamingReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
