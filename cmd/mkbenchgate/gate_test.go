package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"musketeer/internal/bench"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: musketeer/internal/exec
BenchmarkKernelSelect-4     	     762	   1523563 ns/op	  433185 B/op	      29 allocs/op
BenchmarkKernelProject      	     744	   1604365 ns/op	  816512 B/op	       7 allocs/op
BenchmarkKernelHashJoin-16  	      26	  45058391 ns/op	31676430 B/op	   21852 allocs/op
BenchmarkRowKey/hashed-4    	   50316	     23743 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseGoBenchStripsGOMAXPROCS(t *testing.T) {
	m, err := ParseGoBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Measurement{
		"BenchmarkKernelSelect":   {NsOp: 1523563, AllocsOp: 29, HasAllocs: true, BytesOp: 433185, HasBytes: true},
		"BenchmarkKernelProject":  {NsOp: 1604365, AllocsOp: 7, HasAllocs: true, BytesOp: 816512, HasBytes: true},
		"BenchmarkKernelHashJoin": {NsOp: 45058391, AllocsOp: 21852, HasAllocs: true, BytesOp: 31676430, HasBytes: true},
		"BenchmarkRowKey/hashed":  {NsOp: 23743, AllocsOp: 0, HasAllocs: true, BytesOp: 0, HasBytes: true},
	}
	if len(m) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(m), len(want), m)
	}
	for name, w := range want {
		if m[name] != w {
			t.Errorf("%s = %+v, want %+v", name, m[name], w)
		}
	}
}

func TestParseGoBenchKeepsBestOfRepeatedRuns(t *testing.T) {
	m, err := ParseGoBench(strings.NewReader(`
BenchmarkX-4   100   2000 ns/op   64 B/op   9 allocs/op
BenchmarkX-4   100   1500 ns/op   64 B/op   8 allocs/op
BenchmarkX-4   100   1800 ns/op   64 B/op   9 allocs/op
`))
	if err != nil {
		t.Fatal(err)
	}
	if got := m["BenchmarkX"]; got != (Measurement{NsOp: 1500, AllocsOp: 8, HasAllocs: true, BytesOp: 64, HasBytes: true}) {
		t.Errorf("BenchmarkX = %+v, want best of 3 runs", got)
	}
}

func TestLoadKernelBaselineFromCommittedArtifact(t *testing.T) {
	base, err := LoadKernelBaseline(filepath.Join("..", "..", "BENCH_kernels.json"))
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := base["BenchmarkKernelSelect"]
	if !ok {
		t.Fatalf("BenchmarkKernelSelect missing from baseline: %v", base)
	}
	if sel.NsOp <= 0 || !sel.HasAllocs {
		t.Errorf("implausible baseline %+v", sel)
	}
	// Groups other than "kernels" (row_key, sort, codec, partitioning) must
	// be picked up too, and non-benchmark entries skipped.
	if _, ok := base["BenchmarkSortRows/parallel"]; !ok {
		t.Error("nested group entry BenchmarkSortRows/parallel not loaded")
	}
	for name := range base {
		if !strings.HasPrefix(name, "Benchmark") {
			t.Errorf("non-benchmark baseline entry %q", name)
		}
	}
}

// TestGateFailsOnSlowedBenchmark: a fresh run with one benchmark 2x slower
// than its committed baseline must be reported as a regression by name; the
// untouched benchmarks must not be.
func TestGateFailsOnSlowedBenchmark(t *testing.T) {
	baseline, err := LoadKernelBaseline(filepath.Join("..", "..", "BENCH_kernels.json"))
	if err != nil {
		t.Fatal(err)
	}
	fresh := map[string]Measurement{}
	for name, m := range baseline {
		fresh[name] = m
	}
	slowed := baseline["BenchmarkKernelAgg"]
	slowed.NsOp *= 2
	fresh["BenchmarkKernelAgg"] = slowed

	regs, checked, missing := CompareKernels(fresh, baseline, 0.25)
	if checked != len(baseline) || missing != 0 {
		t.Fatalf("checked %d missing %d, want %d/0", checked, missing, len(baseline))
	}
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly the slowed benchmark", regs)
	}
	if regs[0].Name != "BenchmarkKernelAgg" || regs[0].Metric != "ns/op" {
		t.Errorf("regression = %+v, want BenchmarkKernelAgg ns/op", regs[0])
	}
	if regs[0].Allowed != slowed.NsOp/2*1.25 {
		t.Errorf("allowed = %v, want baseline x 1.25", regs[0].Allowed)
	}
}

func TestGateAllocRegressionAndZeroAllocGuard(t *testing.T) {
	baseline := map[string]Measurement{
		"BenchmarkZero": {NsOp: 100, AllocsOp: 0, HasAllocs: true},
		"BenchmarkFew":  {NsOp: 100, AllocsOp: 8, HasAllocs: true},
	}
	fresh := map[string]Measurement{
		"BenchmarkZero": {NsOp: 100, AllocsOp: 1, HasAllocs: true}, // zero-alloc path now allocates
		"BenchmarkFew":  {NsOp: 100, AllocsOp: 10, HasAllocs: true}, // within 25%+0.5
	}
	regs, _, _ := CompareKernels(fresh, baseline, 0.25)
	if len(regs) != 1 || regs[0].Name != "BenchmarkZero" || regs[0].Metric != "allocs/op" {
		t.Fatalf("regs = %v, want only BenchmarkZero allocs/op", regs)
	}
}

// B/op gating: a baseline that records bytes fails when fresh heap bytes
// grow past the allowance, and the 64-byte slack absorbs size-class noise.
// Baselines without bytes never gate on them.
func TestGateBytesRegression(t *testing.T) {
	baseline := map[string]Measurement{
		"BenchmarkStreamFused": {NsOp: 100, AllocsOp: 4, HasAllocs: true, BytesOp: 1024, HasBytes: true},
		"BenchmarkNoise":       {NsOp: 100, AllocsOp: 4, HasAllocs: true, BytesOp: 1024, HasBytes: true},
		"BenchmarkNoBytes":     {NsOp: 100, AllocsOp: 4, HasAllocs: true},
	}
	fresh := map[string]Measurement{
		"BenchmarkStreamFused": {NsOp: 100, AllocsOp: 4, HasAllocs: true, BytesOp: 4096, HasBytes: true},
		"BenchmarkNoise":       {NsOp: 100, AllocsOp: 4, HasAllocs: true, BytesOp: 1300, HasBytes: true},
		"BenchmarkNoBytes":     {NsOp: 100, AllocsOp: 4, HasAllocs: true, BytesOp: 1 << 30, HasBytes: true},
	}
	regs, _, _ := CompareKernels(fresh, baseline, 0.25)
	if len(regs) != 1 || regs[0].Name != "BenchmarkStreamFused" || regs[0].Metric != "B/op" {
		t.Fatalf("regs = %v, want only BenchmarkStreamFused B/op", regs)
	}
}

func TestGateToleratesNoiseWithinThreshold(t *testing.T) {
	baseline := map[string]Measurement{"BenchmarkX": {NsOp: 1000, AllocsOp: 100, HasAllocs: true}}
	fresh := map[string]Measurement{"BenchmarkX": {NsOp: 1240, AllocsOp: 120, HasAllocs: true}}
	if regs, _, _ := CompareKernels(fresh, baseline, 0.25); len(regs) != 0 {
		t.Errorf("within-threshold drift flagged: %v", regs)
	}
}

func TestCompareConcurrencySpeedup(t *testing.T) {
	base := &bench.ConcurrencyReport{Speedup: 1.14}
	if regs := CompareConcurrency(&bench.ConcurrencyReport{Speedup: 1.02}, base, 0.25); len(regs) != 0 {
		t.Errorf("within-threshold speedup flagged: %v", regs)
	}
	regs := CompareConcurrency(&bench.ConcurrencyReport{Speedup: 0.70}, base, 0.25)
	if len(regs) != 1 || regs[0].Metric != "speedup" {
		t.Errorf("collapsed speedup not flagged: %v", regs)
	}
}

func TestLoadConcurrencyReportFromCommittedArtifact(t *testing.T) {
	rep, err := loadConcurrencyReport(filepath.Join("..", "..", "BENCH_concurrency.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup <= 0 {
		t.Errorf("speedup = %v, want > 0", rep.Speedup)
	}
}

func TestLoadKernelBaselineRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte(`{"description": "x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKernelBaseline(path); err == nil {
		t.Error("baseline with no benchmarks accepted")
	}
}

func TestCompareServiceGates(t *testing.T) {
	base := &bench.ServiceReport{
		Speedup: 3.0,
		HitRate: 0.90,
		Hit:     bench.ServiceLatency{P99MS: 3},
		Storm:   bench.ServiceLatency{P99MS: 600},
	}
	// Within-threshold drift (speedup -20%, hit rate -10%, p99s inside the
	// relative-plus-absolute allowances) must pass clean.
	ok := &bench.ServiceReport{
		Speedup: 2.4,
		HitRate: 0.81,
		Hit:     bench.ServiceLatency{P99MS: 40},
		Storm:   bench.ServiceLatency{P99MS: 900},
	}
	if regs := CompareService(ok, base, 0.25); len(regs) != 0 {
		t.Errorf("within-threshold service drift flagged: %v", regs)
	}
	// Each metric regressing past its allowance must be flagged by name.
	bad := &bench.ServiceReport{
		Speedup: 1.1,                               // < 3.0*0.75
		HitRate: 0.30,                              // < 0.90*0.75-0.02
		Hit:     bench.ServiceLatency{P99MS: 60},   // > 3*1.25+50
		Storm:   bench.ServiceLatency{P99MS: 1200}, // > 600*1.25+250
	}
	regs := CompareService(bad, base, 0.25)
	if len(regs) != 4 {
		t.Fatalf("regressions = %v, want all four service metrics flagged", regs)
	}
	metrics := map[string]bool{}
	for _, r := range regs {
		if r.Name != "service" {
			t.Errorf("regression name %q, want service", r.Name)
		}
		metrics[r.Metric] = true
	}
	for _, m := range []string{"plan-cache speedup", "hit rate", "hit p99 ms", "storm p99 ms"} {
		if !metrics[m] {
			t.Errorf("metric %q not flagged: %v", m, regs)
		}
	}
}

// TestServiceArtifactMeetsThresholds pins the committed service report to
// the PR's acceptance bar: replaying a cached plan must at least halve the
// unloaded submit-to-result p50 (speedup >= 2x), and the storm's plan-cache
// hit rate must stay high — one cold search per variant plus stragglers,
// not a cache that silently stopped hitting.
func TestServiceArtifactMeetsThresholds(t *testing.T) {
	rep, err := loadServiceReport(filepath.Join("..", "..", "BENCH_service.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup < 2 {
		t.Errorf("plan-cache speedup %.2fx, want >= 2x", rep.Speedup)
	}
	if rep.HitRate < 0.75 {
		t.Errorf("storm hit rate %.2f, want >= 0.75", rep.HitRate)
	}
	if rep.Cold.P50MS <= rep.Hit.P50MS {
		t.Errorf("cold p50 %.2fms not above hit p50 %.2fms", rep.Cold.P50MS, rep.Hit.P50MS)
	}
	if rep.Sessions < 100 || rep.Tenants < 2 {
		t.Errorf("storm ran %d sessions across %d tenants, want a real multi-tenant load", rep.Sessions, rep.Tenants)
	}
	if rep.StormThroughputWFPS <= 0 || rep.Storm.Samples != rep.Sessions {
		t.Errorf("storm completed %d/%d sessions at %.1f wf/s", rep.Storm.Samples, rep.Sessions, rep.StormThroughputWFPS)
	}
}

// TestStreamingArtifactMeetsThresholds pins the committed streaming report
// to the PR's acceptance bar: the fused chain must be >=1.5x faster than
// operator-at-a-time, WHILE-body fusion must cut peak heap by >=30% on the
// fig3 workload, and the columnar shuffle encoding must be <=60% of TSV.
func TestStreamingArtifactMeetsThresholds(t *testing.T) {
	rep, err := loadStreamingReport(filepath.Join("..", "..", "BENCH_streaming.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pipeline.Speedup < 1.5 {
		t.Errorf("fused pipeline speedup %.2fx, want >= 1.5x", rep.Pipeline.Speedup)
	}
	if rep.Memory.PeakReductionPct < 30 {
		t.Errorf("peak memory reduction %.0f%%, want >= 30%%", rep.Memory.PeakReductionPct)
	}
	if rep.Codec.Ratio <= 0 || rep.Codec.Ratio > 0.60 {
		t.Errorf("columnar/tsv ratio %.2f, want in (0, 0.60]", rep.Codec.Ratio)
	}
}
