// An external test package so internal/bench may itself import musketeer
// (the service bench drives the root serve handler) without a cycle
// through this file.
package musketeer_test

// One testing.B benchmark per paper table and figure. Each benchmark
// regenerates the corresponding experiment through the full pipeline
// (front-end → IR → optimizer → partitioner → codegen → simulated
// engines) and reports how long the regeneration takes; the experiment's
// actual series are printed by `go run ./cmd/mkbench` and recorded in
// EXPERIMENTS.md. Run with:
//
//	go test -bench=. -benchmem
import (
	"testing"

	"musketeer/internal/bench"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := exp.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

func BenchmarkFig02aProject(b *testing.B)           { benchExperiment(b, "fig2a") }
func BenchmarkFig02bJoin(b *testing.B)              { benchExperiment(b, "fig2b") }
func BenchmarkFig03PageRankMotivation(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig07TPCH(b *testing.B)               { benchExperiment(b, "fig7") }
func BenchmarkFig08PageRankMapping(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig08cEfficiency(b *testing.B)        { benchExperiment(b, "fig8c") }
func BenchmarkFig09CrossCommunity(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10NetflixOverhead(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11PageRankOverhead(b *testing.B)   { benchExperiment(b, "fig11") }
func BenchmarkFig12aMerging(b *testing.B)           { benchExperiment(b, "fig12a") }
func BenchmarkFig12bMerging(b *testing.B)           { benchExperiment(b, "fig12b") }
func BenchmarkFig13Partitioning(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkFig14MappingQuality(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15SSSPKMeans(b *testing.B)         { benchExperiment(b, "fig15") }
func BenchmarkFig16Heuristic(b *testing.B)          { benchExperiment(b, "fig16") }
func BenchmarkTab01Calibration(b *testing.B)        { benchExperiment(b, "tab1") }
func BenchmarkTab03Features(b *testing.B)           { benchExperiment(b, "tab3") }
func BenchmarkSec7StudentJoin(b *testing.B)         { benchExperiment(b, "sec7") }
func BenchmarkExtFaults(b *testing.B)               { benchExperiment(b, "ext-faults") }
